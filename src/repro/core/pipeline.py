"""The complete Theorem 1 / Theorem 3 pipeline as composable stages.

The paper's end-to-end algorithm composes three stages:

1. the MPC fractional algorithm (Theorem 3: `Õ(√log λ)` rounds,
   `(2+O(ε))` fractional, λ-oblivious),
2. §6 randomized rounding (Θ(1) integral, whp via parallel copies),
3. Appendix-B boosting (`(1+ε)` integral).

Historically :func:`solve_allocation` was a monolith wiring those
together with keyword flags.  The serving layer (:mod:`repro.serve`,
DESIGN.md §8) needs scenario-diverse configurations — skip-boost
serving, rounding-only re-rolls, custom repair policies — so the
composition is now explicit: each stage is a small object with one
``run(ctx)`` method producing a :class:`StageRecord`, and
:func:`run_pipeline` executes any stage sequence over a shared
:class:`PipelineContext`.  :func:`solve_allocation` keeps its exact
historical surface and randomness contract (bit-identical outputs for
identical seeds) by building the default stage list.

Randomness contract: one call spawns exactly three streams — slot 0
drives the fractional solve, slot 1 drives rounding *and* the repair
pass (repair continues the stream rounding advanced, as the monolith
did), slot 2 drives boosting.  Slots are fixed per stage role, not per
stage position, so removing a stage never shifts another stage's
stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Literal, Optional, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.boosting.boost import BoostResult, boost_allocation
from repro.core.fractional import FractionalAllocation
from repro.core.mpc_driver import MPCResult, solve_allocation_mpc
from repro.graphs.instances import AllocationInstance
from repro.kernels import (
    RoundWorkspace,
    resolve_workspace,
    transplant_workspace,
    workspace_for,
)
from repro.rounding.repair import greedy_fill
from repro.rounding.sampling import RoundingOutcome, round_best_of
from repro.utils.rng import spawn
from repro.utils.validation import check_fraction

__all__ = [
    "PipelineResult",
    "StageRecord",
    "PipelineContext",
    "PipelineStage",
    "FractionalStage",
    "RoundingStage",
    "RepairStage",
    "BoostStage",
    "default_stages",
    "run_pipeline",
    "solve_allocation",
    "solve_allocation_many",
]

# Fixed stream slots per stage *role* (see the module docstring).
N_STREAM_SLOTS = 3
FRACTIONAL_STREAM = 0
ROUNDING_STREAM = 1  # shared with repair: repair continues the stream
BOOST_STREAM = 2


@dataclass(frozen=True)
class StageRecord:
    """One stage's audit record — the shared protocol every stage emits.

    ``size`` is the integral allocation size after the stage (``None``
    for stages that only produce fractional state); ``detail`` carries
    the stage-specific columns a report would quote.
    """

    stage: str
    size: Optional[int]
    detail: dict[str, Any] = field(default_factory=dict)


@dataclass
class PipelineContext:
    """Mutable state threaded through a stage sequence.

    Stages read what upstream stages produced and write their own
    outputs; :func:`run_pipeline` seeds the context and collects the
    audit records.
    """

    instance: AllocationInstance
    epsilon: float
    streams: list[Any]
    workspace: RoundWorkspace
    initial_exponents: Optional[np.ndarray] = None
    mpc: Optional[MPCResult] = None
    allocation: Optional[FractionalAllocation] = None
    rounding: Optional[RoundingOutcome] = None
    boosting: Optional[BoostResult] = None
    edge_mask: Optional[np.ndarray] = None
    repaired_size: Optional[int] = None
    records: list[StageRecord] = field(default_factory=list)

    def stream(self, slot: int):
        """The spawned RNG stream for a stage role slot."""
        return self.streams[slot]

    @property
    def size(self) -> int:
        if self.edge_mask is None:
            raise RuntimeError("no integral allocation produced yet")
        return int(self.edge_mask.sum())


@runtime_checkable
class PipelineStage(Protocol):
    """A composable pipeline stage: reads/writes the context, returns
    its audit record."""

    name: str

    def run(self, ctx: PipelineContext) -> StageRecord: ...


@dataclass(frozen=True)
class FractionalStage:
    """Stage 1 — the Theorem-3 MPC fractional solve.

    Consumes stream slot 0 and the context's ``initial_exponents``
    (the session warm-start path, DESIGN.md §8).  ``options`` forwards
    extra keyword arguments to :func:`solve_allocation_mpc` (mode,
    substrate, sample budget, …).
    """

    alpha: float = 0.5
    lam: Optional[int] = None
    options: dict[str, Any] = field(default_factory=dict)
    name: str = "fractional"

    def run(self, ctx: PipelineContext) -> StageRecord:
        mpc = solve_allocation_mpc(
            ctx.instance,
            ctx.epsilon,
            alpha=self.alpha,
            lam=self.lam,
            seed=ctx.stream(FRACTIONAL_STREAM),
            workspace=ctx.workspace,
            initial_exponents=ctx.initial_exponents,
            **self.options,
        )
        ctx.mpc = mpc
        ctx.allocation = mpc.allocation
        return StageRecord(
            stage=self.name,
            size=None,
            detail={
                "mpc_rounds": mpc.mpc_rounds,
                "local_rounds": mpc.local_rounds,
                "fractional_weight": mpc.match_weight,
                "warm_start": bool(mpc.meta.get("warm_start")),
            },
        )


@dataclass(frozen=True)
class RoundingStage:
    """Stage 2 — §6 randomized rounding, best of ``copies`` re-rolls.

    Consumes stream slot 1.  Requires a fractional allocation on the
    context (from :class:`FractionalStage` or injected by a serving
    caller re-rolling the rounding of a cached fractional solve).
    """

    copies: Optional[int] = None
    name: str = "rounding"

    def run(self, ctx: PipelineContext) -> StageRecord:
        if ctx.allocation is None:
            raise RuntimeError("rounding stage needs a fractional allocation")
        rounded = round_best_of(
            ctx.instance.graph,
            ctx.instance.capacities,
            ctx.allocation,
            copies=self.copies,
            seed=ctx.stream(ROUNDING_STREAM),
        )
        ctx.rounding = rounded
        ctx.edge_mask = rounded.edge_mask
        ctx.repaired_size = rounded.size  # baseline until a repair stage runs
        return StageRecord(stage=self.name, size=rounded.size, detail={})


@dataclass(frozen=True)
class RepairStage:
    """Greedy maximality repair between rounding and boosting.

    Continues rounding's stream (slot 1), exactly as the monolith did;
    monotonicity (repair can only grow the allocation) is asserted.
    """

    order: Literal["random", "canonical"] = "random"
    name: str = "repair"

    def run(self, ctx: PipelineContext) -> StageRecord:
        if ctx.edge_mask is None or ctx.rounding is None:
            raise RuntimeError("repair stage needs a rounded allocation")
        before = ctx.size
        mask = greedy_fill(
            ctx.instance.graph,
            ctx.instance.capacities,
            ctx.edge_mask,
            order=self.order,
            seed=ctx.stream(ROUNDING_STREAM),
        )
        repaired_size = int(mask.sum())
        assert repaired_size >= before
        ctx.edge_mask = mask
        ctx.repaired_size = repaired_size
        return StageRecord(
            stage=self.name, size=repaired_size, detail={"added": repaired_size - before}
        )


@dataclass(frozen=True)
class BoostStage:
    """Stage 3 — Appendix-B boosting towards (1+ε).

    Consumes stream slot 2.  ``epsilon=None`` resolves to the
    monolith's default ``max(pipeline ε, 0.25)`` (the boosting k grows
    as 1/ε, so very small ε targets are expensive).
    """

    epsilon: Optional[float] = None
    mode: Literal["layered", "deterministic"] = "layered"
    name: str = "boost"

    def resolve_epsilon(self, pipeline_epsilon: float) -> float:
        return self.epsilon if self.epsilon is not None else max(pipeline_epsilon, 0.25)

    def run(self, ctx: PipelineContext) -> StageRecord:
        if ctx.edge_mask is None:
            raise RuntimeError("boost stage needs an integral allocation")
        before = ctx.repaired_size if ctx.repaired_size is not None else ctx.size
        boosting = boost_allocation(
            ctx.instance,
            ctx.edge_mask,
            self.resolve_epsilon(ctx.epsilon),
            mode=self.mode,
            seed=ctx.stream(BOOST_STREAM),
        )
        assert boosting.final_size >= before
        ctx.boosting = boosting
        ctx.edge_mask = boosting.edge_mask
        return StageRecord(
            stage=self.name,
            size=boosting.final_size,
            detail={"augmentations": boosting.augmentations, "k": boosting.k},
        )


def default_stages(
    *,
    repair: bool = True,
    boost: bool = True,
    boost_epsilon: Optional[float] = None,
    boost_mode: Literal["layered", "deterministic"] = "layered",
    lam: Optional[int] = None,
    alpha: float = 0.5,
    rounding_copies: Optional[int] = None,
    mpc_options: Optional[dict[str, Any]] = None,
) -> tuple[PipelineStage, ...]:
    """The paper's pipeline as a stage tuple (the monolith's shape)."""
    stages: list[PipelineStage] = [
        FractionalStage(alpha=alpha, lam=lam, options=dict(mpc_options or {})),
        RoundingStage(copies=rounding_copies),
    ]
    if repair:
        stages.append(RepairStage())
    if boost:
        stages.append(BoostStage(epsilon=boost_epsilon, mode=boost_mode))
    return tuple(stages)


@dataclass(frozen=True)
class PipelineResult:
    """Final integral allocation with per-stage audit records."""

    edge_mask: np.ndarray
    size: int
    mpc: MPCResult
    rounding: RoundingOutcome
    boosting: Optional[BoostResult]
    repaired_size: int
    meta: dict[str, Any] = field(default_factory=dict)
    stage_records: tuple[StageRecord, ...] = ()
    # The instance actually solved (capacity overrides applied) — what
    # a serving re-roll must round against.  Typed field, not a meta
    # entry, so meta stays plain JSON-serializable scalars.
    instance: Optional[AllocationInstance] = None

    def summary(self) -> dict[str, Any]:
        """One row of the numbers a report would quote."""
        return {
            "mpc_rounds": self.mpc.mpc_rounds,
            "local_rounds": self.mpc.local_rounds,
            "fractional_weight": round(self.mpc.match_weight, 3),
            "rounded_size": self.rounding.size,
            "repaired_size": self.repaired_size,
            "final_size": self.size,
            "boost_augmentations": None if self.boosting is None else self.boosting.augmentations,
        }


def run_pipeline(
    instance: AllocationInstance,
    stages: Sequence[PipelineStage],
    epsilon: float = 0.2,
    *,
    seed=None,
    workspace: Optional[RoundWorkspace] = None,
    initial_exponents: Optional[np.ndarray] = None,
    cached_fractional: Optional[MPCResult] = None,
    meta: Optional[dict[str, Any]] = None,
) -> PipelineResult:
    """Execute a stage sequence on one instance.

    Spawns the fixed three-slot stream set (module docstring), runs the
    stages in order, and packages the context into a
    :class:`PipelineResult`.  The sequence must produce an integral
    allocation (contain a rounding stage); fractional-only flows use
    :func:`solve_allocation_mpc` directly.

    ``cached_fractional`` seeds the context with an already-computed
    fractional solve instead of running a :class:`FractionalStage` —
    the reseeded-rounding serving shape
    (:meth:`repro.serve.AllocationSession.reroll_rounding`): the stage
    list then starts at rounding, and the cached solve appears in the
    audit trail as a ``fractional(cached)`` record.
    """
    epsilon = check_fraction(epsilon, "epsilon", inclusive_high=0.25)
    ctx = PipelineContext(
        instance=instance,
        epsilon=epsilon,
        streams=spawn(seed, N_STREAM_SLOTS),
        workspace=resolve_workspace(instance.graph, workspace),
        initial_exponents=initial_exponents,
    )
    stage_names = [s.name for s in stages]
    if cached_fractional is not None:
        if any(isinstance(s, FractionalStage) for s in stages):
            raise ValueError(
                "cached_fractional replaces the fractional stage; the stage "
                "list must start at rounding"
            )
        ctx.mpc = cached_fractional
        ctx.allocation = cached_fractional.allocation
        ctx.records.append(
            StageRecord(stage="fractional(cached)", size=None, detail={"cached": True})
        )
        stage_names = ["fractional(cached)"] + stage_names
    for stage in stages:
        ctx.records.append(stage.run(ctx))
    if ctx.edge_mask is None or ctx.mpc is None or ctx.rounding is None:
        raise RuntimeError(
            "pipeline did not produce an integral allocation: stage list "
            f"{[s.name for s in stages]} needs a fractional and a rounding stage"
        )
    result_meta = {"epsilon": epsilon, "stages": stage_names}
    if meta:
        result_meta.update(meta)
    return PipelineResult(
        edge_mask=ctx.edge_mask,
        size=ctx.size,
        mpc=ctx.mpc,
        rounding=ctx.rounding,
        boosting=ctx.boosting,
        repaired_size=int(ctx.repaired_size if ctx.repaired_size is not None else ctx.size),
        meta=result_meta,
        stage_records=tuple(ctx.records),
        instance=instance,
    )


def solve_allocation(
    instance: AllocationInstance,
    epsilon: float = 0.2,
    *,
    boost_epsilon: Optional[float] = None,
    lam: Optional[int] = None,
    alpha: float = 0.5,
    repair: bool = True,
    boost: bool = True,
    boost_mode: Literal["layered", "deterministic"] = "layered",
    seed=None,
    workspace: Optional[RoundWorkspace] = None,
    initial_exponents: Optional[np.ndarray] = None,
) -> PipelineResult:
    """Run the full paper pipeline on one instance.

    Parameters mirror the stage drivers; ``boost_epsilon`` defaults to
    ``max(epsilon, 0.25)`` (the boosting k grows as 1/ε, so very small
    ε targets are expensive — pick it independently when needed).
    Stages after the MPC solve are monotone: each can only grow the
    allocation (asserted).  ``workspace`` lets batched callers reuse
    the per-graph kernel workspace (see :func:`solve_allocation_many`);
    ``initial_exponents`` warm-starts the fractional dynamics (the
    :class:`repro.serve.AllocationSession` path, DESIGN.md §8).

    This is :func:`run_pipeline` over :func:`default_stages` — the
    flags select stages, and outputs are bit-identical to the
    historical monolith for identical seeds.
    """
    epsilon = check_fraction(epsilon, "epsilon", inclusive_high=0.25)
    if boost_epsilon is None:
        boost_epsilon = max(epsilon, 0.25)
    stages = default_stages(
        repair=repair,
        boost=boost,
        boost_epsilon=boost_epsilon,
        boost_mode=boost_mode,
        lam=lam,
        alpha=alpha,
    )
    return run_pipeline(
        instance,
        stages,
        epsilon,
        seed=seed,
        workspace=workspace,
        initial_exponents=initial_exponents,
        meta={
            "epsilon": epsilon,
            "boost_epsilon": boost_epsilon,
            "repair": repair,
            "boost": boost,
            "warm_start": initial_exponents is not None,
        },
    )


def solve_allocation_many(
    instances: Sequence[AllocationInstance],
    epsilon: float = 0.2,
    *,
    seed=None,
    **kwargs: Any,
) -> list[PipelineResult]:
    """Run the full pipeline over a batch of instances.

    The first step toward the heavy-traffic serving story (ROADMAP):
    one call amortizes per-graph setup across the batch.  Each
    instance's :class:`~repro.kernels.RoundWorkspace` is resolved once
    up front and handed to every stage, and workspaces are shared at
    two levels:

    * instances sharing a graph *object* (one graph, many capacity or
      parameter variations) share the graph's cached workspace as
      before;
    * instances whose graphs are **equal but distinct objects** — the
      real serving shape, where every request deserializes its own
      copy of the same graph — adopt the structure of an earlier batch
      member via :func:`~repro.kernels.transplant_workspace`, so
      cached slot-owner indices and ``reduceat`` offsets are built
      once per distinct CSR structure rather than once per instance.

    Seeds are spawned per batch *position* from ``seed``: results are
    reproducible for a fixed ordering (entry ``i`` equals a single
    :func:`solve_allocation` call with ``spawn(seed, n)[i]``), but
    permuting the batch permutes the streams.  Extra keyword arguments
    are forwarded to :func:`solve_allocation`.

    For the resident one-graph/many-requests shape with warm starts
    and thread parallelism, see :mod:`repro.serve` (DESIGN.md §8).
    """
    if "workspace" in kwargs:
        raise TypeError(
            "solve_allocation_many resolves one workspace per instance "
            "graph itself; do not pass workspace="
        )
    instances = list(instances)
    streams = spawn(seed, len(instances))
    # First workspace seen per cheap structural signature; candidates
    # for layout adoption by later equal-but-distinct graphs.  The
    # signature only gates the attempt — transplant_workspace verifies
    # actual indptr equality per side before adopting anything.
    seen: dict[tuple[int, int, int], RoundWorkspace] = {}
    results: list[PipelineResult] = []
    for instance, stream in zip(instances, streams):
        graph = instance.graph
        sig = (graph.n_left, graph.n_right, graph.n_edges)
        parent = seen.get(sig)
        if parent is None:
            ws = workspace_for(graph)
        else:
            ws = transplant_workspace(graph, parent)
        seen.setdefault(sig, ws)
        results.append(
            solve_allocation(
                instance,
                epsilon,
                seed=stream,
                workspace=ws,
                **kwargs,
            )
        )
    return results
