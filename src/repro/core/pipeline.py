"""The complete Theorem 1 / Theorem 3 pipeline as one public call.

The paper's end-to-end algorithm composes three stages:

1. the MPC fractional algorithm (Theorem 3: `Õ(√log λ)` rounds,
   `(2+O(ε))` fractional, λ-oblivious),
2. §6 randomized rounding (Θ(1) integral, whp via parallel copies),
3. Appendix-B boosting (`(1+ε)` integral).

:func:`solve_allocation` packages them with one seed and one ε, plus
the optional greedy-repair extension between stages 2 and 3 (on by
default — it only helps and costs O(m)).  Every stage's audit record
is kept on the result so downstream users can report the same columns
the experiment suite does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Literal, Optional, Sequence

import numpy as np

from repro.boosting.boost import BoostResult, boost_allocation
from repro.core.mpc_driver import MPCResult, solve_allocation_mpc
from repro.graphs.instances import AllocationInstance
from repro.kernels import RoundWorkspace, workspace_for
from repro.rounding.repair import greedy_fill
from repro.rounding.sampling import RoundingOutcome, round_best_of
from repro.utils.rng import spawn
from repro.utils.validation import check_fraction

__all__ = ["PipelineResult", "solve_allocation", "solve_allocation_many"]


@dataclass(frozen=True)
class PipelineResult:
    """Final integral allocation with per-stage audit records."""

    edge_mask: np.ndarray
    size: int
    mpc: MPCResult
    rounding: RoundingOutcome
    boosting: Optional[BoostResult]
    repaired_size: int
    meta: dict[str, Any] = field(default_factory=dict)

    def summary(self) -> dict[str, Any]:
        """One row of the numbers a report would quote."""
        return {
            "mpc_rounds": self.mpc.mpc_rounds,
            "local_rounds": self.mpc.local_rounds,
            "fractional_weight": round(self.mpc.match_weight, 3),
            "rounded_size": self.rounding.size,
            "repaired_size": self.repaired_size,
            "final_size": self.size,
            "boost_augmentations": None if self.boosting is None else self.boosting.augmentations,
        }


def solve_allocation(
    instance: AllocationInstance,
    epsilon: float = 0.2,
    *,
    boost_epsilon: Optional[float] = None,
    lam: Optional[int] = None,
    alpha: float = 0.5,
    repair: bool = True,
    boost: bool = True,
    boost_mode: Literal["layered", "deterministic"] = "layered",
    seed=None,
    workspace: Optional[RoundWorkspace] = None,
) -> PipelineResult:
    """Run the full paper pipeline on one instance.

    Parameters mirror the stage drivers; ``boost_epsilon`` defaults to
    ``max(epsilon, 0.25)`` (the boosting k grows as 1/ε, so very small
    ε targets are expensive — pick it independently when needed).
    Stages after the MPC solve are monotone: each can only grow the
    allocation (asserted).  ``workspace`` lets batched callers reuse
    the per-graph kernel workspace (see :func:`solve_allocation_many`).
    """
    epsilon = check_fraction(epsilon, "epsilon", inclusive_high=0.25)
    if boost_epsilon is None:
        boost_epsilon = max(epsilon, 0.25)
    streams = spawn(seed, 3)

    mpc = solve_allocation_mpc(
        instance, epsilon, alpha=alpha, lam=lam, seed=streams[0],
        workspace=workspace,
    )
    rounded = round_best_of(
        instance.graph, instance.capacities, mpc.allocation, seed=streams[1]
    )
    mask = rounded.edge_mask
    repaired_size = rounded.size
    if repair:
        mask = greedy_fill(instance.graph, instance.capacities, mask, seed=streams[1])
        repaired_size = int(mask.sum())
        assert repaired_size >= rounded.size

    boosting: Optional[BoostResult] = None
    if boost:
        boosting = boost_allocation(
            instance, mask, boost_epsilon, mode=boost_mode, seed=streams[2]
        )
        assert boosting.final_size >= repaired_size
        mask = boosting.edge_mask

    return PipelineResult(
        edge_mask=mask,
        size=int(mask.sum()),
        mpc=mpc,
        rounding=rounded,
        boosting=boosting,
        repaired_size=repaired_size,
        meta={
            "epsilon": epsilon,
            "boost_epsilon": boost_epsilon,
            "repair": repair,
            "boost": boost,
        },
    )


def solve_allocation_many(
    instances: Sequence[AllocationInstance],
    epsilon: float = 0.2,
    *,
    seed=None,
    **kwargs: Any,
) -> list[PipelineResult]:
    """Run the full pipeline over a batch of instances.

    The first step toward the heavy-traffic serving story (ROADMAP):
    one call amortizes per-graph setup across the batch.  Each
    instance's :class:`~repro.kernels.RoundWorkspace` is resolved once
    up front and handed to every stage, so instances that share a
    graph object (the common serving shape: one graph, many capacity
    or parameter variations) share cached slot-owner indices, reduceat
    offsets and scratch buffers instead of rebuilding them per solve.
    Seeds are spawned per batch *position* from ``seed``: results are
    reproducible for a fixed ordering (entry ``i`` equals a single
    :func:`solve_allocation` call with ``spawn(seed, n)[i]``), but
    permuting the batch permutes the streams.  Extra keyword arguments
    are forwarded to :func:`solve_allocation`.
    """
    if "workspace" in kwargs:
        raise TypeError(
            "solve_allocation_many resolves one workspace per instance "
            "graph itself; do not pass workspace="
        )
    instances = list(instances)
    streams = spawn(seed, len(instances))
    results: list[PipelineResult] = []
    for instance, stream in zip(instances, streams):
        results.append(
            solve_allocation(
                instance,
                epsilon,
                seed=stream,
                workspace=workspace_for(instance.graph),
                **kwargs,
            )
        )
    return results
