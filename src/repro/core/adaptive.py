"""Algorithm 3 machinery: adaptive thresholds and Lemma 13 extraction.

Algorithm 3 itself is :class:`repro.core.proportional.ProportionalRun`
with a non-constant :class:`ThresholdSchedule`; this module provides

* schedules used by tests/ablations (random k in ``[1/k₀, k₀]``), and
* the **Lemma 13 equivalence witness**: given the *true* allocs of a
  round and the decisions some execution actually took (e.g. sampled
  Algorithm 2 acting on estimates), reconstruct per-vertex thresholds
  ``k_{v,r} ∈ [1/4, 4]`` under which Algorithm 3 would have taken the
  identical decisions — or report which vertices admit no such
  threshold (the low-probability estimation-failure event).

The reconstruction follows the case analysis of Lemma 13: it prefers
the lemma's canonical constants (¼, ½, 3, 1) and otherwise picks any
feasible value in ``[1/4, 4]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import check_fraction

__all__ = [
    "RandomizedThresholds",
    "ThresholdWitness",
    "reconstruct_round_thresholds",
    "K_MIN",
    "K_MAX",
]

K_MIN = 0.25
K_MAX = 4.0


@dataclass
class RandomizedThresholds:
    """IID thresholds ``k_{v,r} ~ U[1/k₀, k₀]`` — the stress schedule
    E10 uses to probe Theorem 16's ``(2+(2k+8)ε)`` degradation."""

    k0: float = 4.0
    seed: int | None = None
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.k0 < 1:
            raise ValueError(f"k0 must be >= 1, got {self.k0}")
        self._rng = as_generator(self.seed)

    def thresholds(self, round_index: int, n_right: int) -> np.ndarray:
        return self._rng.uniform(1.0 / self.k0, self.k0, size=n_right)


@dataclass(frozen=True)
class ThresholdWitness:
    """Per-round reconstruction outcome.

    ``k`` is a feasible threshold vector; ``feasible`` flags vertices
    whose decision is explainable by *some* ``k ∈ [1/4, 4]``.  The whp
    statement of Lemma 13 is that ``feasible`` is all-True.
    """

    k: np.ndarray
    feasible: np.ndarray

    @property
    def all_feasible(self) -> bool:
        return bool(self.feasible.all())

    @property
    def infeasible_count(self) -> int:
        return int((~self.feasible).sum())


def reconstruct_round_thresholds(
    true_alloc: np.ndarray,
    capacities: np.ndarray,
    decisions: np.ndarray,
    epsilon: float,
) -> ThresholdWitness:
    """Lemma 13's constructive direction for one round.

    For each right vertex, given its true ``alloc_v`` and the decision
    ``d ∈ {+1, −1, 0}`` an execution took, find ``k ∈ [1/4, 4]`` such
    that Algorithm 3's rule reproduces ``d``:

    * ``d = +1`` needs ``alloc ≤ C/(1+kε)``  ⇔  ``k ≤ (C/alloc − 1)/ε``;
    * ``d = −1`` needs ``alloc ≥ C(1+kε)``  ⇔  ``k ≤ (alloc/C − 1)/ε``;
    * ``d = 0``  needs ``C/(1+kε) < alloc < C(1+kε)``
      ⇔  ``k > (max(C/alloc, alloc/C) − 1)/ε``.
    """
    epsilon = check_fraction(epsilon, "epsilon")
    alloc = np.asarray(true_alloc, dtype=np.float64)
    caps = np.asarray(capacities, dtype=np.float64)
    decisions = np.asarray(decisions)
    if not (alloc.shape == caps.shape == decisions.shape):
        raise ValueError("alloc, capacities, decisions must share a shape")

    n = alloc.shape[0]
    k = np.full(n, 1.0, dtype=np.float64)
    feasible = np.ones(n, dtype=bool)

    with np.errstate(divide="ignore", invalid="ignore"):
        # Upper bounds on k for the two one-sided decisions.
        k_up_increase = np.where(alloc > 0, (caps / np.where(alloc > 0, alloc, 1.0) - 1.0) / epsilon, np.inf)
        k_up_decrease = (alloc / caps - 1.0) / epsilon
        # Lower bound (strict) for the keep decision; alloc = 0 can
        # never be kept (C/(1+kε) > 0 for every finite k), so its ratio
        # is +∞ and the decision is unexplainable.
        ratio = np.where(
            alloc > 0,
            np.maximum(caps / np.where(alloc > 0, alloc, 1.0), alloc / caps),
            np.inf,
        )
        k_low_keep = (ratio - 1.0) / epsilon

    inc = decisions == 1
    dec = decisions == -1
    keep = decisions == 0

    # d = +1: any k ≤ k_up_increase works; Lemma 13 uses 1/4, which is
    # admissible exactly when k_up_increase ≥ 1/4 — the same condition.
    # Return K_MIN itself, the *interior* end of the admissible
    # interval, not the boundary value k_up_increase: the boundary sits
    # exactly where replaying ``alloc ≤ C/(1+kε)`` round-trips through
    # floating-point division, and an ulp of rounding (or a
    # tolerance-tier backend's ulp-different alloc, DESIGN.md §11)
    # would flip the replayed decision.  K_MIN leaves the maximal
    # margin while witnessing the same decision.
    ok = inc & (k_up_increase >= K_MIN)
    k[ok] = K_MIN
    feasible[inc & ~(k_up_increase >= K_MIN)] = False

    # d = −1 symmetric.
    ok = dec & (k_up_decrease >= K_MIN)
    k[ok] = K_MIN
    feasible[dec & ~(k_up_decrease >= K_MIN)] = False

    # d = 0: need some k in (k_low_keep, K_MAX]; pick K_MAX when valid.
    ok = keep & (k_low_keep < K_MAX)
    k[ok] = K_MAX
    feasible[keep & ~(k_low_keep < K_MAX)] = False

    # Clamp into [K_MIN, K_MAX] for the feasible ones.
    k = np.clip(k, K_MIN, K_MAX)
    return ThresholdWitness(k=k, feasible=feasible)
