"""The paper's core algorithms and drivers.

Layout:

* :mod:`repro.core.params` — every closed-form parameter (τ, B, t, λ
  guesses, predicted factors).
* :mod:`repro.core.fractional` — fractional allocation values.
* :mod:`repro.core.proportional` — Algorithm 1/3 dynamics
  (:class:`ProportionalRun`).
* :mod:`repro.core.termination` — the λ-free stopping certificate.
* :mod:`repro.core.adaptive` — threshold schedules + Lemma 13
  reconstruction.
* :mod:`repro.core.trace` — per-round trajectory recording.
* :mod:`repro.core.local_driver` — LOCAL entry points (Theorems 2, 9,
  20 and the λ-oblivious variant).
* :mod:`repro.core.sampled` — Algorithm 2 (sampled phases).
* :mod:`repro.core.mpc_driver` — the full MPC algorithm (Theorem 3).
* :mod:`repro.core.pipeline` — the end-to-end Theorem 1/3 pipeline as
  composable stages (:func:`solve_allocation` and the stage objects
  the serving layer recombines).

The fractional drivers and the pipeline all accept ``workspace`` (the
cached per-graph kernel invariants, DESIGN.md §6) and
``initial_exponents`` (a retained β vector to warm-start the dynamics
from — the resident-session path, DESIGN.md §8).
"""

from repro.core.fractional import FractionalAllocation, FeasibilityReport
from repro.core.proportional import (
    ProportionalRun,
    ConstantThresholds,
    ReplayThresholds,
    compute_x_alloc,
    match_weight_from_alloc,
)
from repro.core.termination import CertificateStatus, evaluate_certificate
from repro.core.local_driver import (
    LocalRunResult,
    resolve_lambda_bound,
    solve_fractional_fixed_tau,
    solve_fractional_until_certificate,
    solve_fractional_one_plus_eps,
)
from repro.core.pipeline import PipelineResult, solve_allocation
from repro.core.ball_replay import ReplayOutcome, verify_phase_locality
from repro.core import params

__all__ = [
    "FractionalAllocation",
    "FeasibilityReport",
    "ProportionalRun",
    "ConstantThresholds",
    "ReplayThresholds",
    "compute_x_alloc",
    "match_weight_from_alloc",
    "CertificateStatus",
    "evaluate_certificate",
    "LocalRunResult",
    "resolve_lambda_bound",
    "solve_fractional_fixed_tau",
    "solve_fractional_until_certificate",
    "solve_fractional_one_plus_eps",
    "PipelineResult",
    "solve_allocation",
    "ReplayOutcome",
    "verify_phase_locality",
    "params",
]
