"""Fractional allocations (Definition 6) as first-class values.

A fractional allocation assigns ``x_e ∈ [0, 1]`` to every edge with
``Σ_{v∈N_u} x_{u,v} ≤ 1`` for ``u ∈ L`` and ``Σ_{u∈N_v} x_{u,v} ≤ C_v``
for ``v ∈ R``.  The solvers return :class:`FractionalAllocation`
objects; feasibility checking is centralized here so every output in
the library is validated the same way.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.capacities import validate_capacities

__all__ = ["FractionalAllocation", "FeasibilityReport"]


@dataclass(frozen=True)
class FeasibilityReport:
    """Outcome of a feasibility check with the worst violations found."""

    feasible: bool
    max_left_excess: float
    max_right_excess: float
    min_value: float
    max_value: float

    def __bool__(self) -> bool:
        return self.feasible


@dataclass(frozen=True)
class FractionalAllocation:
    """Edge values ``x`` (canonical edge order) for a specific instance."""

    x: np.ndarray

    def __post_init__(self) -> None:
        x = np.asarray(self.x, dtype=np.float64)
        object.__setattr__(self, "x", x)

    @property
    def weight(self) -> float:
        """Total fractional weight ``Σ_e x_e``."""
        return float(self.x.sum())

    def left_loads(self, graph: BipartiteGraph) -> np.ndarray:
        """``Σ_{v∈N_u} x_{u,v}`` per left vertex."""
        return np.bincount(graph.edge_u, weights=self.x, minlength=graph.n_left)

    def right_loads(self, graph: BipartiteGraph) -> np.ndarray:
        """``Σ_{u∈N_v} x_{u,v}`` per right vertex."""
        return np.bincount(graph.edge_v, weights=self.x, minlength=graph.n_right)

    def check_feasibility(
        self,
        graph: BipartiteGraph,
        capacities: np.ndarray,
        *,
        tol: float = 1e-9,
    ) -> FeasibilityReport:
        """Validate Definition 6 up to floating tolerance ``tol``."""
        caps = validate_capacities(graph, capacities)
        if self.x.shape != (graph.n_edges,):
            raise ValueError(
                f"x has shape {self.x.shape}, expected ({graph.n_edges},)"
            )
        left = self.left_loads(graph)
        right = self.right_loads(graph)
        max_left_excess = float((left - 1.0).max(initial=0.0))
        max_right_excess = float((right - caps).max(initial=0.0))
        min_value = float(self.x.min(initial=0.0))
        max_value = float(self.x.max(initial=0.0))
        feasible = (
            max_left_excess <= tol
            and max_right_excess <= tol
            and min_value >= -tol
            and max_value <= 1.0 + tol
        )
        return FeasibilityReport(
            feasible=feasible,
            max_left_excess=max_left_excess,
            max_right_excess=max_right_excess,
            min_value=min_value,
            max_value=max_value,
        )

    def require_feasible(
        self, graph: BipartiteGraph, capacities: np.ndarray, *, tol: float = 1e-9
    ) -> "FractionalAllocation":
        """Raise if infeasible; returns self for chaining."""
        report = self.check_feasibility(graph, capacities, tol=tol)
        if not report.feasible:
            raise ValueError(f"infeasible fractional allocation: {report}")
        return self

    def scaled_into_feasibility(
        self, graph: BipartiteGraph, capacities: np.ndarray
    ) -> "FractionalAllocation":
        """Scale each right vertex's incoming mass down to its capacity.

        This is exactly lines 5–6 of Algorithm 1: ``x'_{u,v} =
        min(1, C_v/alloc_v) · x_{u,v}``.  Left-side loads only shrink,
        so the result is feasible whenever the input satisfies the
        left-side constraint.
        """
        caps = validate_capacities(graph, capacities)
        right = self.right_loads(graph)
        with np.errstate(divide="ignore", invalid="ignore"):
            scale = np.where(right > caps, caps / np.where(right > 0, right, 1.0), 1.0)
        x_scaled = self.x * scale[graph.edge_v]
        return FractionalAllocation(x=x_scaled)
