"""Ball-locality verification for the phase-compressed algorithm.

The §5 compression argument: after graph exponentiation, each machine
holds a vertex's ball of the sampled communication graph and simulates
the whole phase locally.  This module *proves that claim executable*:
:func:`replay_center_decisions` recomputes a right vertex's B rounds
of sampled decisions using **only** information available inside a
ball — the ball's edges (the union of the phase's sample edges), the
phase-start priorities of ball vertices, and each ball vertex's own
group tables and keyed sample streams — and reports whether every
intermediate estimate was computable from ball data alone.

A dependency-radius subtlety the paper's "B-hop neighbourhood"
phrasing glosses: one dynamics round is a radius-**2** dependency in
the bipartite graph (alloc at v needs x from N(v), which needs β̂ from
N(N(v))), so B rounds need radius **2B** balls.  The verifier makes
this measurable: with radius 2B the replay is always complete
(tested); with radius B it can come up short.  The cost model is
unaffected beyond a +1 inside the log (⌈log₂ 2B⌉ = ⌈log₂ B⌉ + 1).

The validity logic is explicit: an estimate at round s is *valid* only
if every sampled neighbour it touches is inside the ball and carries a
valid value for round s; invalidity propagates forward.  The function
returns both the replayed decision sequence and a per-round validity
flag, so callers can distinguish "matched by luck" from "provably
locally computable".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.sampled import (
    _KEY_OFFSET,
    LEFT_SIDE,
    RIGHT_SIDE,
    KeyedSampler,
    SampledRun,
    SideGroups,
)
from repro.graphs.bipartite import BipartiteGraph
from repro.utils.rng import choice_without_replacement

__all__ = ["ReplayOutcome", "ball_around", "replay_center_decisions", "verify_phase_locality"]


@dataclass(frozen=True)
class ReplayOutcome:
    """Result of replaying one center vertex's phase inside a ball."""

    decisions: list[int]          # the center's replayed ±1/0 per round
    valid: list[bool]             # was each round fully ball-computable?
    ball_size: int

    @property
    def all_valid(self) -> bool:
        return all(self.valid)


def ball_around(
    graph: BipartiteGraph,
    sample_edges: set[tuple[int, int]],
    center_merged: int,
    radius: int,
) -> set[int]:
    """Merged-id vertex set of the radius-``radius`` ball of the sampled
    graph around ``center_merged`` (BFS)."""
    from collections import defaultdict, deque

    adj: dict[int, set[int]] = defaultdict(set)
    for a, b in sample_edges:
        adj[a].add(b)
        adj[b].add(a)
    dist = {center_merged: 0}
    queue = deque([center_merged])
    while queue:
        w = queue.popleft()
        if dist[w] >= radius:
            continue
        for nb in adj[w]:
            if nb not in dist:
                dist[nb] = dist[w] + 1
                queue.append(nb)
    return set(dist)


def _group_slots_of_vertex(groups: SideGroups, row: int) -> list[tuple[int, np.ndarray]]:
    """``(group_index, slot_ids)`` for every group of one row."""
    out = []
    for g in range(groups.n_groups):
        if int(groups.group_row[g]) == row:
            out.append(
                (g, groups.slot_order[groups.group_start[g] : groups.group_start[g + 1]])
            )
    return out


def replay_center_decisions(
    run: SampledRun,
    left_groups: SideGroups,
    right_groups: SideGroups,
    beta_start: np.ndarray,
    start_round_index: int,
    center_v: int,
    ball_merged: set[int],
    rounds: int,
) -> ReplayOutcome:
    """Replay ``rounds`` decisions of right vertex ``center_v`` using
    only ball-local data.

    ``run`` supplies the configuration (ε, budget, keyed sampler) —
    its state is *not* consulted; all values are recomputed from
    ``beta_start``.  Requires the keyed sampler (per-vertex streams).
    """
    if not isinstance(run.sampler, KeyedSampler):
        raise ValueError("ball replay requires the keyed sampler")
    if run.estimator != "stratified":
        raise ValueError("ball replay implements the stratified estimator only")
    g = run.graph
    eps_log = run.log1p_eps
    budget = run.sample_budget
    caps = run.capacities

    ball_left = {w for w in ball_merged if w < g.n_left}
    ball_right = {w - g.n_left for w in ball_merged if w >= g.n_left}
    if center_v not in ball_right:
        raise ValueError("center vertex must be inside its own ball")

    # Local β state (exponents) for ball right vertices, and validity:
    # a right vertex's β is valid at round s if all its decisions so
    # far were computable from ball data.
    beta_local = {v: int(beta_start[v]) for v in ball_right}
    beta_valid = {v: True for v in ball_right}

    shift = max(beta_local.values(), default=0)

    def beta_value(v: int) -> float:
        return float(np.exp((beta_local[v] - shift) * eps_log))

    decisions_out: list[int] = []
    valid_out: list[bool] = []

    # Pre-extract per-vertex group slot tables (phase-start info each
    # vertex owns locally in the MPC implementation).
    left_tables = {u: _group_slots_of_vertex(left_groups, u) for u in ball_left}
    right_tables = {v: _group_slots_of_vertex(right_groups, v) for v in ball_right}

    for s in range(rounds):
        round_index = start_round_index + s
        # --- β̂_u for ball left vertices --------------------------------
        beta_hat: dict[int, float] = {}
        beta_hat_valid: dict[int, bool] = {}
        for u in ball_left:
            est = 0.0
            ok = True
            for g_idx, slots in left_tables[u]:
                size = slots.shape[0]
                rng = run.sampler.factory.get(
                    round_index, LEFT_SIDE, u,
                    int(left_groups.group_key[g_idx]) + _KEY_OFFSET,
                )
                local_idx = choice_without_replacement(rng, size, budget)
                chosen_slots = slots[local_idx]
                ssum = 0.0
                for slot in chosen_slots.tolist():
                    v = int(g.left_adj[slot])
                    if v not in ball_right or not beta_valid[v]:
                        ok = False
                        break
                    ssum += beta_value(v)
                if not ok:
                    break
                est += size / max(1, chosen_slots.shape[0]) * ssum
            beta_hat[u] = est
            beta_hat_valid[u] = ok

        # --- alloc-hat and decision for ball right vertices -------------
        new_beta = dict(beta_local)
        new_valid = dict(beta_valid)
        center_decision = 0
        center_ok = beta_valid[center_v]
        for v in ball_right:
            inv_sum = 0.0
            ok = beta_valid[v]
            for g_idx, slots in right_tables[v]:
                size = slots.shape[0]
                rng = run.sampler.factory.get(
                    round_index, RIGHT_SIDE, v,
                    int(right_groups.group_key[g_idx]) + _KEY_OFFSET,
                )
                local_idx = choice_without_replacement(rng, size, budget)
                chosen_slots = slots[local_idx]
                ssum = 0.0
                for slot in chosen_slots.tolist():
                    u = int(g.right_adj[slot])
                    if u not in ball_left or not beta_hat_valid.get(u, False):
                        ok = False
                        break
                    bh = beta_hat[u]
                    ssum += (1.0 / bh) if bh > 0 else 0.0
                if not ok:
                    break
                inv_sum += size / max(1, chosen_slots.shape[0]) * ssum
            alloc_hat = beta_value(v) * inv_sum
            c = float(caps[v])
            if alloc_hat <= c / (1.0 + run.epsilon):
                d = 1
            elif alloc_hat >= c * (1.0 + run.epsilon):
                d = -1
            else:
                d = 0
            new_beta[v] = beta_local[v] + d
            new_valid[v] = ok
            if v == center_v:
                center_decision = d
                center_ok = ok
        beta_local = new_beta
        beta_valid = new_valid
        decisions_out.append(center_decision)
        valid_out.append(center_ok)

    return ReplayOutcome(
        decisions=decisions_out, valid=valid_out, ball_size=len(ball_merged)
    )


def verify_phase_locality(
    run: SampledRun,
    rounds: int,
    *,
    centers: list[int] | None = None,
) -> dict[int, bool]:
    """Execute one phase of ``run`` while independently replaying each
    center's decisions from a radius-``2·rounds`` ball.

    Returns ``{center: replay matched and was fully ball-local}``.
    Mutates ``run`` (the phase really executes).
    """
    g = run.graph
    if centers is None:
        centers = list(range(g.n_right))
    left_groups, right_groups = run.build_phase_groups()
    beta_start = run.beta_exp.copy()
    start_round = run.rounds_completed

    # Collect the union sampled graph by re-drawing every vertex's
    # samples (keyed streams make this a pure function).
    sample_edges: set[tuple[int, int]] = set()
    for s in range(rounds):
        pos_l = run.sampler.sample_positions(left_groups, LEFT_SIDE, start_round + s, run.sample_budget)
        for slot in left_groups.slot_order[pos_l].tolist():
            u = int(np.searchsorted(g.left_indptr, slot, side="right") - 1)
            sample_edges.add((u, g.n_left + int(g.left_adj[slot])))
        pos_r = run.sampler.sample_positions(right_groups, RIGHT_SIDE, start_round + s, run.sample_budget)
        for slot in right_groups.slot_order[pos_r].tolist():
            v = int(np.searchsorted(g.right_indptr, slot, side="right") - 1)
            sample_edges.add((int(g.right_adj[slot]), g.n_left + v))

    # Ground truth: actually run the phase, capturing decisions.
    run.record_estimates = True
    report = run.run_phase(rounds)
    truth = {v: [int(r.decisions[v]) for r in report.rounds] for v in centers}

    results: dict[int, bool] = {}
    for v in centers:
        ball = ball_around(g, sample_edges, g.n_left + v, radius=2 * rounds)
        outcome = replay_center_decisions(
            run, left_groups, right_groups, beta_start, start_round,
            v, ball, rounds,
        )
        results[v] = outcome.all_valid and outcome.decisions == truth[v]
    return results
