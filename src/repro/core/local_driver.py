"""LOCAL-model entry points for the paper's fractional algorithms.

Three drivers, one per theorem:

* :func:`solve_fractional_fixed_tau` — Algorithm 1 for
  ``τ = ⌈log_{1+ε}(4λ/ε)⌉ + 1`` rounds (Theorem 2/9; needs λ or a
  bound on it).
* :func:`solve_fractional_until_certificate` — the λ-oblivious variant
  (remark after Theorem 9): run until one of the two certificate
  conditions holds.
* :func:`solve_fractional_one_plus_eps` — the long AZM18 regime
  (Theorem 20): ``τ = 2·log(2|R|/ε)/ε² + 1/ε`` rounds for (1+O(ε)).

Each returns a :class:`LocalRunResult` with the scaled (feasible)
fractional allocation, the round count (the quantity the paper's
bounds speak about), and the certified approximation factor.

All three accept ``initial_exponents`` to warm-start the dynamics
from a retained β vector (DESIGN.md §8): levels and certificates are
then measured relative to that base, and ``rounds`` counts only the
incremental run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.core import params
from repro.core.fractional import FractionalAllocation
from repro.core.proportional import ProportionalRun, ThresholdSchedule
from repro.core.termination import CertificateStatus, evaluate_certificate
from repro.core.trace import RoundTrace
from repro.graphs import degeneracy
from repro.graphs.instances import AllocationInstance
from repro.kernels import RoundWorkspace

__all__ = [
    "LocalRunResult",
    "resolve_lambda_bound",
    "solve_fractional_fixed_tau",
    "solve_fractional_until_certificate",
    "solve_fractional_one_plus_eps",
]


@dataclass(frozen=True)
class LocalRunResult:
    """Outcome of a LOCAL driver run."""

    allocation: FractionalAllocation
    match_weight: float
    rounds: int
    epsilon: float
    certificate: Optional[CertificateStatus]
    guarantee: Optional[float]   # certified factor g: OPT ≤ g · match_weight
    trace: Optional[RoundTrace]
    meta: dict[str, Any] = field(default_factory=dict)


def resolve_lambda_bound(instance: AllocationInstance) -> int:
    """Best available arboricity upper bound for an instance: the
    generator's certificate when present, else the degeneracy
    (λ ≤ degeneracy always)."""
    if instance.arboricity_upper_bound is not None:
        return max(1, int(instance.arboricity_upper_bound))
    return max(1, degeneracy(instance.graph))


def _finish(
    run: ProportionalRun,
    instance: AllocationInstance,
    guarantee: Optional[float],
    trace: Optional[RoundTrace],
    **meta: Any,
) -> LocalRunResult:
    allocation = run.fractional_allocation().require_feasible(
        instance.graph, instance.capacities, tol=1e-6
    )
    return LocalRunResult(
        allocation=allocation,
        match_weight=run.match_weight(),
        rounds=run.rounds_completed,
        epsilon=run.epsilon,
        certificate=evaluate_certificate(run),
        guarantee=guarantee,
        trace=trace,
        meta=meta,
    )


def solve_fractional_fixed_tau(
    instance: AllocationInstance,
    epsilon: float,
    *,
    tau: Optional[int] = None,
    lam: Optional[int] = None,
    thresholds: Optional[ThresholdSchedule] = None,
    record_trace: bool = False,
    workspace: Optional[RoundWorkspace] = None,
    initial_exponents: Optional[np.ndarray] = None,
) -> LocalRunResult:
    """Theorem 2/9: Algorithm 1 for a λ-derived fixed round budget.

    When ``tau`` is given it overrides the λ-derived value (used by
    round-sweep experiments).  The certified guarantee 2+10ε applies
    only to the default Algorithm-1 thresholds with the full budget;
    custom ``thresholds`` report Theorem 16's factor if they advertise
    a ``k0`` attribute, else no guarantee.
    """
    if lam is None:
        lam = resolve_lambda_bound(instance)
    if tau is None:
        tau = params.tau_two_approx(lam, epsilon)
    run = ProportionalRun(
        instance.graph, instance.capacities, epsilon, thresholds=thresholds,
        workspace=workspace, initial_exponents=initial_exponents,
    )
    trace: Optional[RoundTrace] = None
    if record_trace:
        trace = RoundTrace()
        for _ in range(tau):
            run.step()
            trace.append_from_run(run)
    else:
        run.run(tau)

    guarantee: Optional[float]
    full_budget = tau >= params.tau_two_approx(lam, epsilon)
    if thresholds is None:
        guarantee = params.approx_factor_two_regime(epsilon) if full_budget else None
    elif hasattr(thresholds, "k0") and full_budget:
        guarantee = params.approx_factor_adaptive(epsilon, float(thresholds.k0))
    else:
        guarantee = None
    return _finish(run, instance, guarantee, trace, tau=tau, lam=lam, mode="fixed_tau")


def solve_fractional_until_certificate(
    instance: AllocationInstance,
    epsilon: float,
    *,
    check_every: int = 1,
    max_rounds: Optional[int] = None,
    thresholds: Optional[ThresholdSchedule] = None,
    record_trace: bool = False,
    workspace: Optional[RoundWorkspace] = None,
    initial_exponents: Optional[np.ndarray] = None,
) -> LocalRunResult:
    """The λ-oblivious driver: stop at the first satisfied certificate.

    ``max_rounds`` defaults to the λ = n worst case plus slack; hitting
    it raises, because the paper guarantees the certificate fires by
    ``⌈log_{1+ε}(4λ/ε)⌉ + 1`` — exceeding the cap signals a bug, not a
    hard instance.
    """
    if check_every < 1:
        raise ValueError(f"check_every must be >= 1, got {check_every}")
    if max_rounds is None:
        worst_lambda = max(2, instance.graph.n_vertices)
        max_rounds = params.tau_two_approx(worst_lambda, epsilon) + 2
    run = ProportionalRun(
        instance.graph, instance.capacities, epsilon, thresholds=thresholds,
        workspace=workspace, initial_exponents=initial_exponents,
    )
    trace = RoundTrace() if record_trace else None
    certificate: Optional[CertificateStatus] = None
    while run.rounds_completed < max_rounds:
        run.step()
        if trace is not None:
            trace.append_from_run(run)
        if run.rounds_completed % check_every == 0:
            certificate = evaluate_certificate(run)
            if certificate.satisfied:
                break
    else:  # pragma: no cover - defensive; the theorem forbids this
        raise RuntimeError(
            f"certificate did not fire within {max_rounds} rounds — "
            "this contradicts the remark after Theorem 9"
        )
    if certificate is None or not certificate.satisfied:
        raise RuntimeError(
            f"certificate did not fire within {max_rounds} rounds — "
            "this contradicts the remark after Theorem 9"
        )
    guarantee = params.approx_factor_two_regime(epsilon) if thresholds is None else None
    return _finish(
        run, instance, guarantee, trace, mode="until_certificate",
        check_every=check_every,
    )


def solve_fractional_one_plus_eps(
    instance: AllocationInstance,
    epsilon: float,
    *,
    tau: Optional[int] = None,
    record_trace: bool = False,
    workspace: Optional[RoundWorkspace] = None,
    initial_exponents: Optional[np.ndarray] = None,
) -> LocalRunResult:
    """Theorem 20 regime: long run, (1 + (1+14)ε) with Algorithm 1's
    ``k = 1`` thresholds (Lemma 19 with k = 1)."""
    if tau is None:
        tau = params.tau_one_plus_eps(instance.graph.n_right, epsilon)
    run = ProportionalRun(
        instance.graph, instance.capacities, epsilon, workspace=workspace,
        initial_exponents=initial_exponents,
    )
    trace: Optional[RoundTrace] = None
    if record_trace:
        trace = RoundTrace()
        for _ in range(tau):
            run.step()
            trace.append_from_run(run)
    else:
        run.run(tau)
    full_budget = tau >= params.tau_one_plus_eps(instance.graph.n_right, epsilon)
    guarantee = params.approx_factor_one_plus_eps(epsilon, k=1.0) if full_budget else None
    return _finish(run, instance, guarantee, trace, tau=tau, mode="one_plus_eps")
