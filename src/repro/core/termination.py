"""The λ-free termination certificate (remark after Theorem 9).

After any round ``r``, partition R into level sets and examine

* ``N' = N(L_{2r})`` — left neighbours of the vertices whose priority
  rose every round, and
* ``L_0`` — vertices whose priority fell every round.

The paper proves that by round ``log_{1+ε}(4λ/ε) + 1`` at least one of

1. ``|N'| ≤ |L_0|``            (small-frontier condition), or
2. ``Σ_{j≥1} Σ_{v∈L_j} alloc_v ≥ (1 − ε/2)·|N'|``   (mass condition)

must hold, and that *whenever* one holds the scaled output is a
``(2+10ε)``-approximation — so the conditions are a sound stopping rule
that needs no knowledge of λ.  Both are O(1) MPC rounds to test; here
they are two vectorized passes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.proportional import ProportionalRun
from repro.graphs.bipartite import BipartiteGraph

__all__ = ["CertificateStatus", "neighbors_of_right_set", "evaluate_certificate"]


@dataclass(frozen=True)
class CertificateStatus:
    """Evaluation of the two stopping conditions after some round."""

    rounds: int
    n_prime: int                 # |N(L_{2r})|
    l0_size: int                 # |L_0|
    top_size: int                # |L_{2r}|
    upper_mass: float            # Σ_{j≥1} alloc over L_1..L_{2r}
    small_frontier: bool         # condition 1
    mass_condition: bool         # condition 2
    epsilon: float

    @property
    def satisfied(self) -> bool:
        return self.small_frontier or self.mass_condition

    def __bool__(self) -> bool:
        return self.satisfied


def neighbors_of_right_set(graph: BipartiteGraph, right_mask: np.ndarray) -> np.ndarray:
    """Boolean mask over L of ``N(S)`` for a right-vertex mask ``S``.

    Vectorized: expand the mask to R-CSR slots through the graph's
    cached slot-owner index (no per-call ``np.repeat``), then scatter
    into an L-side mask.
    """
    right_mask = np.asarray(right_mask, dtype=bool)
    if right_mask.shape != (graph.n_right,):
        raise ValueError(f"right_mask must have shape ({graph.n_right},)")
    out = np.zeros(graph.n_left, dtype=bool)
    if not right_mask.any():
        return out
    slot_mask = right_mask[graph.right_slot_owner]
    out[graph.right_adj[slot_mask]] = True
    return out


def evaluate_certificate(run: ProportionalRun) -> CertificateStatus:
    """Evaluate both conditions on the current state of a run.

    Uses the post-update priorities together with the alloc values
    measured during the just-finished round — exactly the state the
    remark after Theorem 9 reasons about.
    """
    if run.rounds_completed == 0 or run.alloc is None:
        raise RuntimeError("certificate needs at least one completed round")
    graph = run.graph
    r = run.rounds_completed
    top = run.top_level_mask()
    bottom = run.bottom_level_mask()
    n_prime = int(neighbors_of_right_set(graph, top).sum())
    l0_size = int(bottom.sum())
    # Σ alloc over every level above L_0 (j ≥ 1 ⇔ b_v > −r).
    upper_mass = float(run.alloc[~bottom].sum())
    small_frontier = n_prime <= l0_size
    mass_condition = upper_mass >= (1.0 - run.epsilon / 2.0) * n_prime
    return CertificateStatus(
        rounds=r,
        n_prime=n_prime,
        l0_size=l0_size,
        top_size=int(top.sum()),
        upper_mass=upper_mass,
        small_frontier=small_frontier,
        mass_condition=mass_condition,
        epsilon=run.epsilon,
    )
