"""Algorithm 2 — sampled, phase-compressed proportional allocation.

The MPC obstacle (§3.2.1): simulating B LOCAL rounds by shipping whole
B-hop neighbourhoods can exceed machine memory because degrees are
unbounded.  Algorithm 2 removes the obstacle by *estimating* the two
aggregates each round needs —

* ``β_u = Σ_{v∈N_u} β_v``    for every left vertex, and
* ``alloc_v = β_v · Σ_{u∈N_v} 1/β_u``  for every right vertex —

from per-level-group samples drawn at the start of each phase of B
rounds.  Because a β value moves by at most (1+ε) per round, values
inside one phase-start group stay within a ``(1+ε)^B`` spread, which is
exactly the regime Lemma 11's stratified concentration bound covers
with ``t = (1+ε)^{2B}·ε⁻⁵·log n`` samples per (vertex, group, round).

Implementation notes
--------------------
* Two estimators (DESIGN.md §2.4): ``"stratified"`` scales each group's
  sample sum by ``|group|/|sample|`` (the Horvitz–Thompson form Lemma
  11 analyses); ``"pooled"`` is the paper's literal line-5 rescale
  ``|N_w|/|N_{r,w}|`` over the pooled sample.  E10 ablates them.
* Two samplers: ``KeyedSampler`` derives an independent stream per
  (round, side, vertex, group) — reproducible per vertex, which is
  what lets the faithful MPC mode re-draw identical samples inside a
  collected ball; ``FastSampler`` uses one stream and a rank trick, for
  large simulate-mode sweeps.  Identical distributions.
* With the *theoretical* sample budget ``t`` exceeding every group
  size, sampling takes whole groups, estimates are exact, and the
  trajectory coincides with Algorithm 1 — an integration test pins
  this.
* True x/alloc are recomputed each round alongside the estimates
  (instrumentation for Lemma 12/13 checks and the final output, which
  lines 5–6 of Algorithm 1 define in terms of true allocs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Optional

import numpy as np

from repro.core import params
from repro.core.fractional import FractionalAllocation
from repro.core.proportional import (
    bottom_level_mask_from,
    compute_x_alloc,
    init_exponent_state,
    level_indices_from,
    match_weight_from_alloc,
    top_level_mask_from,
)
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.capacities import validate_capacities
from repro.kernels import RoundWorkspace, get_backend, resolve_workspace
from repro.utils.rng import RngFactory, as_generator, choice_without_replacement
from repro.utils.validation import check_fraction, check_positive_int

__all__ = [
    "SideGroups",
    "build_side_groups",
    "KeyedSampler",
    "FastSampler",
    "RoundEstimates",
    "PhaseReport",
    "SampledRun",
]

# Offset applied to (possibly negative) group keys when deriving RNG
# stream keys; exponents never approach this magnitude.
_KEY_OFFSET = 1 << 20

LEFT_SIDE = 0
RIGHT_SIDE = 1


@dataclass(frozen=True)
class SideGroups:
    """Phase-start partition of one side's neighbourhoods by level key.

    ``slot_order`` lists CSR slot ids so that each (row, key) group is
    contiguous; group ``g`` occupies ``slot_order[group_start[g] :
    group_start[g+1]]``, belongs to row ``group_row[g]`` and has level
    key ``group_key[g]``.
    """

    n_rows: int
    n_slots: int
    slot_order: np.ndarray
    group_start: np.ndarray
    group_row: np.ndarray
    group_key: np.ndarray

    @property
    def n_groups(self) -> int:
        return int(self.group_row.shape[0])

    @property
    def group_sizes(self) -> np.ndarray:
        return np.diff(self.group_start)

    def position_group_ids(self) -> np.ndarray:
        """Group id of every position in ``slot_order``."""
        return np.repeat(
            np.arange(self.n_groups, dtype=np.int64), self.group_sizes
        )


def build_side_groups(
    indptr: np.ndarray,
    slot_keys: np.ndarray,
    *,
    slot_owner: Optional[np.ndarray] = None,
) -> SideGroups:
    """Group each CSR row's slots by ``slot_keys`` (vectorized).

    ``slot_owner`` optionally supplies the cached slot→row index (a
    per-graph invariant, see :mod:`repro.kernels`) so phase boundaries
    skip the ``np.repeat`` re-expansion.
    """
    n_rows = indptr.shape[0] - 1
    m = slot_keys.shape[0]
    if slot_owner is not None:
        row_of_slot = slot_owner
    else:
        row_of_slot = np.repeat(np.arange(n_rows, dtype=np.int64), np.diff(indptr))
    # Deterministic order: by row, then key, then slot id.
    order = np.lexsort((np.arange(m), slot_keys, row_of_slot))
    sorted_rows = row_of_slot[order]
    sorted_keys = slot_keys[order]
    if m == 0:
        return SideGroups(
            n_rows=n_rows,
            n_slots=0,
            slot_order=order,
            group_start=np.zeros(1, dtype=np.int64),
            group_row=np.empty(0, dtype=np.int64),
            group_key=np.empty(0, dtype=np.int64),
        )
    boundary = np.empty(m, dtype=bool)
    boundary[0] = True
    boundary[1:] = (sorted_rows[1:] != sorted_rows[:-1]) | (
        sorted_keys[1:] != sorted_keys[:-1]
    )
    starts = np.nonzero(boundary)[0]
    group_start = np.concatenate([starts, [m]]).astype(np.int64)
    return SideGroups(
        n_rows=n_rows,
        n_slots=m,
        slot_order=order.astype(np.int64),
        group_start=group_start,
        group_row=sorted_rows[starts],
        group_key=sorted_keys[starts],
    )


class KeyedSampler:
    """Per-(round, side, vertex, group) independent streams.

    A vertex's sample set is a pure function of (root seed, round,
    side, vertex, group key) — re-drawable anywhere, including inside a
    faithful-mode machine that only holds the vertex's ball.
    """

    def __init__(self, seed=None):
        self.factory = RngFactory(seed)

    def sample_positions(
        self, groups: SideGroups, side: int, round_index: int, budget: int
    ) -> np.ndarray:
        chosen: list[np.ndarray] = []
        sizes = groups.group_sizes
        for g in range(groups.n_groups):
            size = int(sizes[g])
            rng = self.factory.get(
                round_index,
                side,
                int(groups.group_row[g]),
                int(groups.group_key[g]) + _KEY_OFFSET,
            )
            local = choice_without_replacement(rng, size, budget)
            chosen.append(local + groups.group_start[g])
        if not chosen:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(chosen)


class FastSampler:
    """Single-stream sampler using a rank trick: draw one uniform per
    slot and keep the ``budget`` smallest in every group.  Uniform
    without replacement per group, one vectorized pass per round."""

    def __init__(self, seed=None):
        self.rng = as_generator(seed)

    def sample_positions(
        self, groups: SideGroups, side: int, round_index: int, budget: int
    ) -> np.ndarray:
        m = groups.n_slots
        if m == 0:
            return np.empty(0, dtype=np.int64)
        gid = groups.position_group_ids()
        rand = self.rng.random(m)
        order = np.lexsort((rand, gid))
        ranks = np.arange(m, dtype=np.int64) - groups.group_start[gid[order]]
        return order[ranks < budget]


@dataclass(frozen=True)
class RoundEstimates:
    """Instrumentation for one simulated round."""

    round_index: int
    beta_hat: np.ndarray          # estimated β_u per left vertex
    beta_true: np.ndarray         # exact Σ β_v per left vertex
    alloc_hat: np.ndarray         # estimated alloc per right vertex
    alloc_true: np.ndarray        # exact alloc per right vertex
    decisions: np.ndarray

    def beta_relative_errors(self) -> np.ndarray:
        mask = self.beta_true > 0
        out = np.zeros_like(self.beta_true)
        out[mask] = np.abs(self.beta_hat[mask] - self.beta_true[mask]) / self.beta_true[mask]
        return out

    def alloc_relative_errors(self) -> np.ndarray:
        mask = self.alloc_true > 0
        out = np.zeros_like(self.alloc_true)
        out[mask] = np.abs(self.alloc_hat[mask] - self.alloc_true[mask]) / self.alloc_true[mask]
        return out


@dataclass
class PhaseReport:
    """Summary of one executed phase."""

    phase_index: int
    rounds: list[RoundEstimates] = field(default_factory=list)

    def max_beta_error(self) -> float:
        return max((float(r.beta_relative_errors().max(initial=0.0)) for r in self.rounds), default=0.0)

    def max_alloc_error(self) -> float:
        return max((float(r.alloc_relative_errors().max(initial=0.0)) for r in self.rounds), default=0.0)


class SampledRun:
    """Executable Algorithm 2 on one instance.

    Mirrors :class:`ProportionalRun`'s surface (β exponents, level
    masks, match weight, scaled output) but drives decisions from the
    sampled estimates.  ``sample_budget=None`` uses the theoretical
    ``t`` from the paper's parameter line (which in practice covers
    whole groups — the exact regime).
    """

    def __init__(
        self,
        graph: BipartiteGraph,
        capacities: np.ndarray,
        epsilon: float,
        *,
        block: int,
        sample_budget: Optional[int] = None,
        estimator: Literal["stratified", "pooled"] = "stratified",
        sampler: Literal["keyed", "fast"] = "keyed",
        seed=None,
        record_estimates: bool = True,
        workspace: Optional[RoundWorkspace] = None,
        initial_exponents: Optional[np.ndarray] = None,
    ):
        self.graph = graph
        self.workspace = resolve_workspace(graph, workspace)
        self.capacities = validate_capacities(graph, capacities).astype(np.float64)
        self.epsilon = check_fraction(epsilon, "epsilon")
        self.block = check_positive_int(block, "block")
        n = graph.n_vertices
        if sample_budget is None:
            sample_budget = params.sample_size(self.block, self.epsilon, max(2, n))
        self.sample_budget = check_positive_int(sample_budget, "sample_budget")
        if estimator not in ("stratified", "pooled"):
            raise ValueError(f"unknown estimator {estimator!r}")
        self.estimator = estimator
        if sampler == "keyed":
            self.sampler = KeyedSampler(seed)
        elif sampler == "fast":
            self.sampler = FastSampler(seed)
        else:
            raise ValueError(f"unknown sampler {sampler!r}")
        self.record_estimates = record_estimates

        self.log1p_eps = float(np.log1p(self.epsilon))
        self.base_exponents, self.beta_exp = init_exponent_state(
            graph, initial_exponents
        )
        self.rounds_completed = 0
        self.phases_completed = 0
        self.x_slots: Optional[np.ndarray] = None
        self.alloc: Optional[np.ndarray] = None
        self.phase_reports: list[PhaseReport] = []

    # ------------------------------------------------------------------
    # Phase machinery
    # ------------------------------------------------------------------
    def _beta_values_shifted(self) -> tuple[np.ndarray, float]:
        """β_v = (1+ε)^{b_v − max b} — globally scale-shifted values.

        The dynamics are invariant under a global β scaling (x and
        alloc are ratios), so shifting by the max exponent keeps every
        magnitude in (0, 1] without changing any decision.
        """
        shift = int(self.beta_exp.max(initial=0))
        vals = np.exp((self.beta_exp - shift) * self.log1p_eps)
        return vals, float(shift)

    def _exact_beta_u(self, beta_vals: np.ndarray) -> np.ndarray:
        """Exact β_u = Σ_{v∈N_u} β_v (phase boundaries only)."""
        return self.graph.left_segment_sum(beta_vals[self.graph.left_adj])

    def build_phase_groups(self) -> tuple[SideGroups, SideGroups]:
        """Line 2 of Algorithm 2: partition every neighbourhood by the
        counterpart's current level."""
        g = self.graph
        # L side groups N_u by the (integer, exact) β_v exponent.
        left_groups = build_side_groups(
            g.left_indptr, self.beta_exp[g.left_adj], slot_owner=g.left_slot_owner
        )
        # R side groups N_v by the (1+ε)-bucket of the exact β_u.
        beta_vals, _ = self._beta_values_shifted()
        beta_u = self._exact_beta_u(beta_vals)
        with np.errstate(divide="ignore"):
            log_bu = np.where(beta_u > 0, np.log(np.where(beta_u > 0, beta_u, 1.0)), 0.0)
        bucket_u = np.floor(log_bu / self.log1p_eps).astype(np.int64)
        right_groups = build_side_groups(
            g.right_indptr, bucket_u[g.right_adj], slot_owner=g.right_slot_owner
        )
        return left_groups, right_groups

    def _estimate_row_sums(
        self,
        groups: SideGroups,
        positions: np.ndarray,
        slot_values: np.ndarray,
    ) -> np.ndarray:
        """Estimated per-row sums from sampled positions.

        ``stratified``: Σ over groups of |group|/|sample| · sample sum.
        ``pooled``: per row, |N_w|/|pooled sample| · pooled sample sum
        (the paper's literal line-5/6 rescale).
        """
        backend = get_backend()
        n_groups = groups.n_groups
        gid = groups.position_group_ids()
        chosen_gid = gid[positions]
        chosen_values = slot_values[groups.slot_order[positions]]
        row_sums = np.zeros(groups.n_rows, dtype=np.float64)
        if positions.size == 0:
            return row_sums
        if self.estimator == "stratified":
            sums = backend.scatter_add(
                chosen_gid, weights=chosen_values, minlength=n_groups
            )
            counts = backend.scatter_add(chosen_gid, minlength=n_groups).astype(
                np.float64
            )
            sizes = groups.group_sizes.astype(np.float64)
            with np.errstate(divide="ignore", invalid="ignore"):
                est = np.where(counts > 0, sizes / np.where(counts > 0, counts, 1.0) * sums, 0.0)
            return backend.scatter_add(
                groups.group_row, weights=est, minlength=groups.n_rows
            )
        # pooled
        chosen_rows = groups.group_row[chosen_gid]
        sums = backend.scatter_add(
            chosen_rows, weights=chosen_values, minlength=groups.n_rows
        )
        counts = backend.scatter_add(chosen_rows, minlength=groups.n_rows).astype(
            np.float64
        )
        degrees = backend.scatter_add(
            groups.group_row,
            weights=groups.group_sizes.astype(np.float64),
            minlength=groups.n_rows,
        )
        with np.errstate(divide="ignore", invalid="ignore"):
            row_sums = np.where(counts > 0, degrees / np.where(counts > 0, counts, 1.0) * sums, 0.0)
        return row_sums

    def run_phase(self, rounds: Optional[int] = None) -> PhaseReport:
        """Execute one phase of ``rounds`` (default B) simulated rounds."""
        rounds = self.block if rounds is None else check_positive_int(rounds, "rounds")
        g = self.graph
        left_groups, right_groups = self.build_phase_groups()
        report = PhaseReport(phase_index=self.phases_completed)

        for _ in range(rounds):
            beta_vals, _ = self._beta_values_shifted()
            # Line 5: estimate β_u from fresh per-group samples of N_u.
            pos_l = self.sampler.sample_positions(
                left_groups, LEFT_SIDE, self.rounds_completed, self.sample_budget
            )
            beta_hat = self._estimate_row_sums(
                left_groups, pos_l, beta_vals[g.left_adj]
            )
            # Line 6: estimate alloc_v = β_v · Σ 1/β_u over fresh samples.
            pos_r = self.sampler.sample_positions(
                right_groups, RIGHT_SIDE, self.rounds_completed, self.sample_budget
            )
            with np.errstate(divide="ignore"):
                inv_beta_hat = np.where(beta_hat > 0, 1.0 / np.where(beta_hat > 0, beta_hat, 1.0), 0.0)
            inv_sum_hat = self._estimate_row_sums(
                right_groups, pos_r, inv_beta_hat[g.right_adj]
            )
            alloc_hat = beta_vals * inv_sum_hat

            # Line 7: the plain (1+ε) thresholds on the *estimates*.
            caps = self.capacities
            increase = alloc_hat <= caps / (1.0 + self.epsilon)
            decrease = alloc_hat >= caps * (1.0 + self.epsilon)
            decisions = increase.astype(np.int64) - decrease.astype(np.int64)

            # Instrumentation: exact aggregates for Lemma 12/13 checks
            # and for the final lines-5/6 output of Algorithm 1.
            x_true, alloc_true = compute_x_alloc(
                g, self.beta_exp, self.log1p_eps, workspace=self.workspace
            )
            if self.record_estimates:
                beta_true = self._exact_beta_u(beta_vals)
                report.rounds.append(
                    RoundEstimates(
                        round_index=self.rounds_completed,
                        beta_hat=beta_hat,
                        beta_true=beta_true,
                        alloc_hat=alloc_hat,
                        alloc_true=alloc_true,
                        decisions=decisions,
                    )
                )
            self.beta_exp += decisions
            self.rounds_completed += 1
            self.x_slots, self.alloc = x_true, alloc_true

        self.phases_completed += 1
        self.phase_reports.append(report)
        return report

    def run_rounds(self, total_rounds: int) -> "SampledRun":
        """Execute phases until ``total_rounds`` rounds are done (the
        final phase may be shorter)."""
        if total_rounds < self.rounds_completed:
            raise ValueError("total_rounds already exceeded")
        while self.rounds_completed < total_rounds:
            remaining = total_rounds - self.rounds_completed
            self.run_phase(min(self.block, remaining))
        return self

    # ------------------------------------------------------------------
    # Outputs (mirror ProportionalRun)
    # ------------------------------------------------------------------
    def _require_started(self) -> None:
        if self.rounds_completed == 0 or self.alloc is None:
            raise RuntimeError("no rounds executed yet")

    def match_weight(self) -> float:
        self._require_started()
        return match_weight_from_alloc(self.capacities, self.alloc)

    def fractional_allocation(self) -> FractionalAllocation:
        self._require_started()
        raw = FractionalAllocation(x=self.x_slots)
        return raw.scaled_into_feasibility(self.graph, self.capacities)

    def level_indices(self) -> np.ndarray:
        return level_indices_from(
            self.beta_exp, self.base_exponents, self.rounds_completed
        )

    def top_level_mask(self) -> np.ndarray:
        return top_level_mask_from(
            self.beta_exp, self.base_exponents, self.rounds_completed
        )

    def bottom_level_mask(self) -> np.ndarray:
        return bottom_level_mask_from(
            self.beta_exp, self.base_exponents, self.rounds_completed
        )
