"""Parameter schedules: every closed-form knob the paper specifies.

Centralizing these keeps the experiment tables honest — the "paper
prediction" columns in EXPERIMENTS.md are computed from these functions
and nothing else.

Conventions: ``log`` is natural log unless a base is explicit;
``log2`` is used where the paper counts doublings (λ-guessing, graph
exponentiation).  All round counts are ceilinged to integers.
"""

from __future__ import annotations

import math

from repro.utils.validation import check_fraction, check_positive_int

__all__ = [
    "tau_two_approx",
    "tau_one_plus_eps",
    "tau_azm18",
    "approx_factor_two_regime",
    "approx_factor_adaptive",
    "approx_factor_one_plus_eps",
    "block_length",
    "sample_size",
    "lemma11_sample_size",
    "lambda_guess",
    "lambda_guess_schedule",
    "predicted_mpc_rounds",
]


def tau_two_approx(lam: int, epsilon: float) -> int:
    """Rounds for the (2+10ε) guarantee: ``⌈log_{1+ε}(4λ/ε)⌉ + 1``.

    Theorem 9: running Algorithm 1 for ``τ ≥ log_{1+ε}(4λ/ε) + 1``
    rounds yields ``OPT ≤ (2+10ε)·MatchWeight``.
    """
    lam = check_positive_int(lam, "lam")
    epsilon = check_fraction(epsilon, "epsilon")
    return int(math.ceil(math.log(4.0 * lam / epsilon) / math.log1p(epsilon))) + 1


def tau_one_plus_eps(n_right: int, epsilon: float) -> int:
    """Rounds for the (1+O(ε)) regime (Theorem 20 / Lemma 19):
    ``τ ≥ 2·log(2|R|/ε)/ε² + 1/ε``."""
    n_right = check_positive_int(n_right, "n_right")
    epsilon = check_fraction(epsilon, "epsilon")
    return int(
        math.ceil(2.0 * math.log(2.0 * n_right / epsilon) / epsilon**2 + 1.0 / epsilon)
    )


def tau_azm18(n_right: int, epsilon: float) -> int:
    """The AZM18 round budget ``O(log(|R|/ε)/ε²)`` — the prior state of
    the art this paper improves on (§1.2.1).  Used by the baseline."""
    n_right = check_positive_int(n_right, "n_right")
    epsilon = check_fraction(epsilon, "epsilon")
    return int(math.ceil(math.log(n_right / epsilon) / epsilon**2))


def approx_factor_two_regime(epsilon: float) -> float:
    """The factor Theorem 9 certifies after ``tau_two_approx`` rounds."""
    return 2.0 + 10.0 * check_fraction(epsilon, "epsilon")


def approx_factor_adaptive(epsilon: float, k: float) -> float:
    """Theorem 16: Algorithm 3 with thresholds in ``[1/k, k]`` gives
    ``(2 + (2k+8)ε)``; ``k = 4`` (Lemma 13) gives the paper's 2+16ε."""
    epsilon = check_fraction(epsilon, "epsilon")
    if k < 1:
        raise ValueError(f"threshold bound k must be >= 1, got {k}")
    return 2.0 + (2.0 * k + 8.0) * epsilon


def approx_factor_one_plus_eps(epsilon: float, k: float = 4.0) -> float:
    """Lemma 19 / Theorem 20: ``(1 + (k+14)ε)``; k = 4 gives 1+18ε."""
    epsilon = check_fraction(epsilon, "epsilon")
    if k < 1:
        raise ValueError(f"threshold bound k must be >= 1, got {k}")
    return 1.0 + (k + 14.0) * epsilon


def block_length(
    n: int, lam: int, epsilon: float, alpha: float, *, divisor: int = 48
) -> int:
    """Phase length ``B`` from eq. (4):
    ``B_ε = min(√(α·log n), √(log λ)) / √(8ε)``, then ``B = B_ε/48``.

    The /48 is the paper's analysis convenience; experiments expose
    ``divisor`` to ablate it.  Floored at 1 — a phase must simulate at
    least one round (for tiny λ the sampled algorithm degenerates to
    the exact one, which is correct and the paper's small-λ regime).
    """
    n = check_positive_int(n, "n")
    lam = check_positive_int(lam, "lam")
    epsilon = check_fraction(epsilon, "epsilon")
    if not (0.0 < alpha < 1.0):
        raise ValueError(f"alpha must lie in (0,1), got {alpha}")
    if divisor < 1:
        raise ValueError(f"divisor must be >= 1, got {divisor}")
    log_n = math.log2(max(2, n))
    log_lam = math.log2(max(2, lam))
    b_eps = min(math.sqrt(alpha * log_n), math.sqrt(log_lam)) / math.sqrt(8.0 * epsilon)
    return max(1, int(b_eps / divisor))


def sample_size(block: int, epsilon: float, n: int) -> int:
    """Per-(vertex, level-group, round) sample count from Algorithm 2's
    parameter line: ``t = (1+ε)^{2B} · ε^{-5} · log n``."""
    block = check_positive_int(block, "block")
    epsilon = check_fraction(epsilon, "epsilon")
    n = check_positive_int(n, "n")
    return int(math.ceil((1.0 + epsilon) ** (2 * block) * epsilon**-5 * math.log(max(2, n))))


def lemma11_sample_size(spread: float, epsilon: float, n: int) -> int:
    """Lemma 11's sufficient sample count ``s ≥ 20·t²·log n/ε⁴`` for
    values with spread ``t`` (``x_i ∈ [V/t, V·t]``)."""
    epsilon = check_fraction(epsilon, "epsilon")
    if spread < 1:
        raise ValueError(f"spread must be >= 1, got {spread}")
    n = check_positive_int(n, "n")
    return int(math.ceil(20.0 * spread**2 * math.log(max(2, n)) / epsilon**4))


def lambda_guess(i: int) -> int:
    """The ``i``-th λ guess of §3.2.2: ``√(log λ_i) = 2^i``, i.e.
    ``λ_i = 2^(4^i)``.  Guess 0 is λ=2, then 16, 65536, ...  Doubling
    ``√log λ`` ensures total work is a constant factor above the
    known-λ run."""
    if i < 0:
        raise ValueError(f"guess index must be >= 0, got {i}")
    return 2 ** (4**i)


def lambda_guess_schedule(lam_max: int) -> list[int]:
    """All guesses up to (and including) the first one ≥ ``lam_max``."""
    lam_max = check_positive_int(lam_max, "lam_max")
    guesses = []
    i = 0
    while True:
        g = lambda_guess(i)
        guesses.append(g)
        if g >= lam_max:
            return guesses
        i += 1


def predicted_mpc_rounds(
    tau: int,
    block: int,
    *,
    exponentiation_constant: float = 1.0,
    per_phase_overhead: float = 2.0,
) -> float:
    """The §5 round model: ``(τ/B)·(c₁·⌈log₂ B⌉ + c₂)``.

    ``c₁`` multiplies the graph-exponentiation doubling rounds; ``c₂``
    covers the O(1)-round sampling, aggregation, and termination test
    each phase performs.  Constants are calibrated in E5 against the
    measured cluster rounds.
    """
    tau = check_positive_int(tau, "tau")
    block = check_positive_int(block, "block")
    phases = math.ceil(tau / block)
    exp_rounds = exponentiation_constant * max(1, math.ceil(math.log2(max(2, block))))
    return phases * (exp_rounds + per_phase_overhead)
