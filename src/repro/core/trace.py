"""Round-by-round traces of a proportional-allocation run.

E11 (level-set dynamics — Remark 1's "densest part saturates first")
and several tests want the full trajectory, not just the final state.
:class:`RoundTrace` records compact per-round summaries; attaching it
costs O(n_right) per round on top of the O(m) dynamics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.proportional import ProportionalRun
from repro.core.termination import CertificateStatus, evaluate_certificate

__all__ = ["RoundRecord", "RoundTrace", "run_with_trace"]


@dataclass(frozen=True)
class RoundRecord:
    """Summary of one completed round."""

    round_index: int              # 1-based (after this many rounds)
    match_weight: float
    level_histogram: np.ndarray   # |L_j| for j = 0..2r
    n_increased: int
    n_decreased: int
    n_kept: int
    certificate: Optional[CertificateStatus]
    saturated_fraction: float     # share of R with alloc ≥ C/(1+ε)


@dataclass
class RoundTrace:
    """Accumulated per-round records."""

    records: list[RoundRecord] = field(default_factory=list)

    def append_from_run(self, run: ProportionalRun, *, with_certificate: bool = True) -> RoundRecord:
        if run.alloc is None or run.last_decisions is None:
            raise RuntimeError("trace can only record completed rounds")
        decisions = run.last_decisions
        cert = evaluate_certificate(run) if with_certificate else None
        saturated = float(
            np.count_nonzero(run.alloc >= run.capacities / (1.0 + run.epsilon))
        ) / max(1, run.graph.n_right)
        rec = RoundRecord(
            round_index=run.rounds_completed,
            match_weight=run.match_weight(),
            level_histogram=run.level_histogram(),
            n_increased=int((decisions == 1).sum()),
            n_decreased=int((decisions == -1).sum()),
            n_kept=int((decisions == 0).sum()),
            certificate=cert,
            saturated_fraction=saturated,
        )
        self.records.append(rec)
        return rec

    @property
    def rounds(self) -> int:
        return len(self.records)

    def match_weights(self) -> list[float]:
        return [r.match_weight for r in self.records]

    def certificate_rounds(self) -> Optional[int]:
        """First round whose certificate was satisfied, if any."""
        for r in self.records:
            if r.certificate is not None and r.certificate.satisfied:
                return r.round_index
        return None


def run_with_trace(
    run: ProportionalRun, rounds: int, *, with_certificate: bool = True
) -> RoundTrace:
    """Step ``rounds`` times, recording each round."""
    trace = RoundTrace()
    for _ in range(rounds):
        run.step()
        trace.append_from_run(run, with_certificate=with_certificate)
    return trace
