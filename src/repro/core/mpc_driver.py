"""The full MPC algorithm (Theorem 3).

Pipeline: λ-guessing loop → per guess, phases of B sampled rounds
(Algorithm 2) → per phase, the O(1)-round termination test → scaled
output.  Round bookkeeping follows §5's schedule:

* one phase = graph exponentiation over the phase's sampled graph
  (``2·⌈log₂ B⌉`` exchange rounds), plus constant rounds for level
  grouping, sampling, state write-back, and the termination test;
* the guess schedule ``λ_i = 2^(4^i)`` (``√log λ_i`` doubles per guess)
  keeps the λ-oblivious total within a constant factor of the known-λ
  cost (§3.2.2) — E6 measures that factor.

Two execution modes (DESIGN.md §5):

* ``mode="simulate"`` — Algorithm 2 semantics run directly (the
  vectorized :class:`SampledRun`); MPC rounds are charged from the
  same per-phase schedule the faithful mode actually executes.  This
  is the scale path.
* ``mode="faithful"`` — every communication step additionally runs on
  an accounted :class:`MPCCluster`: the phase's sampled edges are
  distributed, balls of radius B are collected by real graph
  exponentiation, and the termination test runs as route+reduce.
  Space budgets (``S = O(n^α)`` words) are enforced; the numeric
  trajectory is produced by the same keyed sampler, so the two modes
  return bit-identical allocations for one seed.

Warm starts (DESIGN.md §8/§9): the driver accepts an
``initial_exponents`` β vector and starts every guess's dynamics from
it instead of the cold ``b ≡ 0`` — sound because the dynamics converge
from any integer start and the λ-free certificate gates termination
regardless.  The converged vector comes back as
:attr:`MPCResult.final_exponents`, which is the state a resident
:class:`~repro.serve.AllocationSession` retains between solves and the
dynamic layer remaps across instance deltas.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Literal, Optional

import numpy as np

from repro.core import params
from repro.core.fractional import FractionalAllocation
from repro.core.sampled import SampledRun
from repro.core.termination import CertificateStatus, neighbors_of_right_set
from repro.graphs.instances import AllocationInstance
from repro.kernels import RoundWorkspace, workspace_for
from repro.mpc.adaptive import AdaptiveBudgetController
from repro.mpc.cluster import MPCCluster, cluster_for
from repro.mpc.columnar import ColumnarCluster
from repro.mpc.columns import ColumnBatch
from repro.mpc.exponentiation import ball_record_words, collect_balls
from repro.mpc.machine import SpaceViolation
from repro.mpc.primitives import route_by_key, tree_reduce, tree_reduce_vector
from repro.utils.validation import check_fraction

__all__ = ["MPCRoundLedger", "MPCResult", "solve_allocation_mpc"]


def _active_substrate(substrate: Optional[str]) -> str:
    if substrate is not None:
        return substrate
    from repro.mpc.substrate import get_substrate

    return get_substrate()


@dataclass
class MPCRoundLedger:
    """Accumulated MPC round counts, by category."""

    by_category: dict[str, int] = field(default_factory=dict)
    phases: int = 0
    guesses: list[int] = field(default_factory=list)
    peak_machine_words: int = 0
    peak_global_words: int = 0
    peak_routed_records: int = 0      # worst per-machine routing fan-in
    violations: list[str] = field(default_factory=list)
    # One row per executed faithful phase (and per discarded adaptive
    # attempt): budget decision, predicted vs observed peak words, and
    # the phase's distributional load metrics (DESIGN.md §13).
    trajectory: list[dict] = field(default_factory=list)

    def record_routing(self, histogram) -> None:
        """Track the routing-skew peak from a route_by_key histogram."""
        if histogram is not None and histogram.size:
            self.peak_routed_records = max(
                self.peak_routed_records, int(histogram.max())
            )

    def charge(self, category: str, rounds: int) -> None:
        self.by_category[category] = self.by_category.get(category, 0) + int(rounds)

    @property
    def total_rounds(self) -> int:
        return sum(self.by_category.values())


@dataclass(frozen=True)
class MPCResult:
    """Outcome of the MPC driver.

    Beyond the fractional allocation and its certificate, the result
    carries the two quantities the serving layers consume:
    ``meta["warm_start"]`` records whether the solve started from a
    retained β vector, and ``final_exponents`` is the converged vector
    itself — the warm base for the *next* solve (bit-equal to the
    run's ``beta_exp`` at termination; ``local_rounds`` counts only
    this run's rounds, so a warm re-solve reports the small
    incremental count, not the history behind its starting vector).
    """

    allocation: FractionalAllocation
    match_weight: float
    local_rounds: int                     # LOCAL rounds simulated (last guess)
    mpc_rounds: int                       # total accounted MPC rounds
    ledger: MPCRoundLedger
    certificate: Optional[CertificateStatus]
    guarantee: Optional[float]
    epsilon: float
    meta: dict[str, Any] = field(default_factory=dict)
    # Converged β exponent vector — the warm-start state a resident
    # AllocationSession retains between solves (DESIGN.md §8).
    final_exponents: Optional[np.ndarray] = None


def _phase_round_schedule(block: int) -> dict[str, int]:
    """Per-phase round charges.

    Exponentiation reaches radius 2B (the bipartite dependency radius
    of B dynamics rounds — see :mod:`repro.core.ball_replay`): one
    doubling join = 2 exchanges, ⌈log₂(2B)⌉ joins.
    """
    exp_rounds = 2 * max(1, math.ceil(math.log2(2 * block)))
    return {
        "exponentiation": exp_rounds,
        "grouping": 1,
        "sampling": 1,
        "writeback": 1,
        "termination_test": 2,
    }


def _evaluate_certificate_from_run(run: SampledRun, epsilon: float) -> CertificateStatus:
    """Certificate conditions on a sampled run's current state."""
    graph = run.graph
    top = run.top_level_mask()
    bottom = run.bottom_level_mask()
    n_prime = int(neighbors_of_right_set(graph, top).sum())
    l0_size = int(bottom.sum())
    upper_mass = float(run.alloc[~bottom].sum())
    return CertificateStatus(
        rounds=run.rounds_completed,
        n_prime=n_prime,
        l0_size=l0_size,
        top_size=int(top.sum()),
        upper_mass=upper_mass,
        small_frontier=n_prime <= l0_size,
        mass_condition=upper_mass >= (1.0 - epsilon / 2.0) * n_prime,
        epsilon=epsilon,
    )


def _certificates_agree(a: CertificateStatus, b: CertificateStatus) -> bool:
    """Exact agreement of the two certificate evaluations, modulo
    float summation order.

    Every counting field and both stopping conditions must match
    bit-for-bit; ``upper_mass`` is a float fold whose distributed
    (tree-reduce) and host (``np.sum`` pairwise) summation orders may
    differ by ulps, so it is compared to relative 1e-9."""
    return (
        a.rounds == b.rounds
        and a.n_prime == b.n_prime
        and a.l0_size == b.l0_size
        and a.top_size == b.top_size
        and a.small_frontier == b.small_frontier
        and a.mass_condition == b.mass_condition
        and a.epsilon == b.epsilon
        and abs(a.upper_mass - b.upper_mass)
        <= 1e-9 * max(1.0, abs(a.upper_mass), abs(b.upper_mass))
    )


def _phase_sampled_edges(run: SampledRun, rounds_in_phase: int) -> np.ndarray:
    """Pre-draw the phase's samples and return the union sampled graph.

    Samples come from the keyed sampler (pure functions of the seed,
    so the subsequent ``run_phase`` redraws the identical sets).  The
    union is returned as a ``(k, 2)`` array of merged vertex ids in
    lexicographic order — the same sequence as ``sorted(edge_set)``
    over per-record tuples, computed vectorized.
    """
    g = run.graph
    left_groups, right_groups = run.build_phase_groups()
    pair_codes: list[np.ndarray] = []
    n_merged = np.int64(g.n_left) + np.int64(g.n_right)
    for r in range(rounds_in_phase):
        round_index = run.rounds_completed + r
        pos_l = run.sampler.sample_positions(left_groups, 0, round_index, run.sample_budget)
        pos_r = run.sampler.sample_positions(right_groups, 1, round_index, run.sample_budget)
        slots_l = left_groups.slot_order[pos_l]
        slots_r = right_groups.slot_order[pos_r]
        u_l = np.searchsorted(g.left_indptr, slots_l, side="right") - 1
        b_l = g.left_adj[slots_l].astype(np.int64) + g.n_left
        v_r = np.searchsorted(g.right_indptr, slots_r, side="right") - 1
        b_r = np.asarray(v_r, dtype=np.int64) + g.n_left
        u_r = g.right_adj[slots_r].astype(np.int64)
        pair_codes.append(u_l.astype(np.int64) * n_merged + b_l)
        pair_codes.append(u_r * n_merged + b_r)
    codes = np.unique(np.concatenate(pair_codes)) if pair_codes else np.empty(0, np.int64)
    return np.stack([codes // n_merged, codes % n_merged], axis=1)


def _category_words_moved(cluster, log_start: int) -> dict[str, int]:
    """Words moved per round category since ``log_start``, from the
    cluster's round log (labels like ``exponentiation/request`` fold
    into their category prefix)."""
    moved: dict[str, int] = {}
    for entry in cluster.round_log[log_start:]:
        category = entry.label.split("/", 1)[0]
        if category in ("certificate",):
            category = "termination_test"
        moved[category] = moved.get(category, 0) + int(entry.total_words_moved)
    return moved


def _faithful_phase(
    run: SampledRun,
    cluster: MPCCluster | ColumnarCluster,
    rounds_in_phase: int,
    ledger: MPCRoundLedger,
) -> dict[str, Any]:
    """Execute one phase's *communication* on the cluster.

    Builds the union sampled graph (:func:`_phase_sampled_edges`) and
    collects radius-``2B`` balls by graph exponentiation with full
    space accounting.  Record construction dispatches on the substrate
    (DESIGN.md §7); the round schedule and word charges are identical.

    Returns the phase's distributional load metrics — ball payload
    percentiles, per-category words moved, and routing skew — which the
    driver records as a round-ledger trajectory row (DESIGN.md §13).
    """
    g = run.graph
    pairs = _phase_sampled_edges(run, rounds_in_phase)
    columnar = isinstance(cluster, ColumnarCluster)
    log_start = len(cluster.round_log)
    skews: list[float] = []

    def note_skew(histogram) -> None:
        if histogram is not None and histogram.size and histogram.sum() > 0:
            skews.append(
                float(histogram.max()) * histogram.size / float(histogram.sum())
            )

    # Level grouping round: co-locate each vertex's incident sampled
    # edges (the grouping information) by vertex id.
    if columnar:
        cluster.load_batches(
            [ColumnBatch("sedge", {"a": pairs[:, 0], "b": pairs[:, 1]}, key="a")]
        )
        hist = route_by_key(cluster, label="grouping", return_histogram=True)
    else:
        cluster.load([("sedge", int(a), int(b)) for a, b in pairs])
        hist = route_by_key(
            cluster, key_fn=lambda rec: rec[1], label="grouping",
            return_histogram=True,
        )
    ledger.record_routing(hist)
    note_skew(hist)
    ledger.charge("grouping", 1)
    ledger.charge("sampling", 1)  # the sample-announcement round

    # Graph exponentiation on the sampled graph.  One dynamics round is
    # a radius-2 dependency in the bipartite graph (alloc needs x from
    # N(v), which needs β̂ from N(N(v))), so B rounds need radius-2B
    # balls — verified executable in repro.core.ball_replay.  The +1
    # inside ⌈log₂(2B)⌉ is absorbed by the theorem's constants.
    ball_words = np.zeros(0, dtype=np.int64)
    if rounds_in_phase >= 1:
        balls, exp_rounds = collect_balls(
            cluster,
            g.n_vertices,
            [tuple(p) for p in pairs.tolist()],
            radius=2 * rounds_in_phase,
        )
        ledger.charge("exponentiation", exp_rounds)
        if balls:
            ball_words = np.sort(
                np.asarray(
                    [ball_record_words(edges) for edges in balls.values()],
                    dtype=np.int64,
                )
            )
    # Write-back of updated β values: one routing round.
    if columnar:
        cluster.load_batches(
            [
                ColumnBatch(
                    "beta",
                    {
                        "v": np.arange(g.n_right, dtype=np.int64),
                        "b": run.beta_exp.astype(np.int64),
                    },
                    key="v",
                )
            ]
        )
        hist = route_by_key(cluster, label="writeback", return_histogram=True)
    else:
        cluster.load([("beta", int(v), int(run.beta_exp[v])) for v in range(g.n_right)])
        hist = route_by_key(
            cluster, key_fn=lambda rec: rec[1], label="writeback",
            return_histogram=True,
        )
    ledger.record_routing(hist)
    note_skew(hist)
    ledger.charge("writeback", 1)

    ledger.peak_machine_words = max(
        ledger.peak_machine_words, cluster.peak_machine_words()
    )
    ledger.peak_global_words = max(ledger.peak_global_words, cluster.peak_global_words())
    ledger.violations.extend(cluster.violations)

    def pct(q: float) -> float:
        return float(np.percentile(ball_words, q)) if ball_words.size else 0.0

    return {
        "ball_count": int(ball_words.size),
        "payload_words_p50": pct(50.0),
        "payload_words_p95": pct(95.0),
        "payload_words_p99": pct(99.0),
        "payload_words_max": int(ball_words[-1]) if ball_words.size else 0,
        "words_moved": _category_words_moved(cluster, log_start),
        "routing_skew": max(skews) if skews else 1.0,
    }


def _faithful_certificate_test(
    run: SampledRun, cluster: MPCCluster | ColumnarCluster, ledger: MPCRoundLedger
) -> CertificateStatus:
    """The O(1)-round termination test, executed with primitives.

    Round 1 routes (edge, is-top-endpoint) records by left vertex so
    each machine can mark its covered left vertices; a tree reduce then
    folds (|N'|, |L₀|, Σ_{j≥1} alloc) to machine 0.  The columnar path
    computes the per-machine partials vectorized (unique counts and
    arrival-order ``bincount`` sums — the object fold's exact order)
    and folds them with :func:`tree_reduce_vector`.
    """
    if isinstance(cluster, ColumnarCluster):
        return _faithful_certificate_test_columnar(run, cluster, ledger)
    g = run.graph
    top = run.top_level_mask()
    bottom = run.bottom_level_mask()
    records: list[tuple] = [
        ("cedge", int(g.edge_u[e]), bool(top[g.edge_v[e]])) for e in range(g.n_edges)
    ]
    records.extend(
        ("cvert", int(v), bool(bottom[v]), float(run.alloc[v]))
        for v in range(g.n_right)
    )
    cluster.load(records)
    ledger.record_routing(
        route_by_key(
            cluster, key_fn=lambda rec: rec[1], label="certificate/route",
            return_histogram=True,
        )
    )
    ledger.charge("termination_test", 1)

    # Local dedup: covered left vertices per machine.
    def extract(rec):
        if rec[0] == "__covered__":
            return (rec[1], 0, 0.0)
        if rec[0] == "cvert":
            return (0, 1 if rec[2] else 0, 0.0 if rec[2] else rec[3])
        return None

    for m in cluster.machines:
        covered = {rec[1] for rec in m.storage if rec[0] == "cedge" and rec[2]}
        m.store(("__covered__", len(covered)))

    def combine(a, b):
        return (a[0] + b[0], a[1] + b[1], a[2] + b[2])

    (n_prime, l0_size, upper_mass), reduce_rounds = tree_reduce(
        cluster, extract, combine, (0, 0, 0.0), label="certificate/reduce"
    )
    ledger.charge("termination_test", reduce_rounds)
    return CertificateStatus(
        rounds=run.rounds_completed,
        n_prime=int(n_prime),
        l0_size=int(l0_size),
        top_size=int(top.sum()),
        upper_mass=float(upper_mass),
        small_frontier=n_prime <= l0_size,
        mass_condition=upper_mass >= (1.0 - run.epsilon / 2.0) * n_prime,
        epsilon=run.epsilon,
    )


def _faithful_certificate_test_columnar(
    run: SampledRun, cluster: ColumnarCluster, ledger: MPCRoundLedger
) -> CertificateStatus:
    g = run.graph
    top = run.top_level_mask()
    bottom = run.bottom_level_mask()
    M = cluster.n_machines
    cedge = ColumnBatch(
        "cedge",
        {
            "u": g.edge_u.astype(np.int64),
            "istop": top[g.edge_v].astype(bool),
        },
        key="u",
    )
    cvert = ColumnBatch(
        "cvert",
        {
            "v": np.arange(g.n_right, dtype=np.int64),
            "isbot": bottom.astype(bool),
            "alloc": run.alloc.astype(np.float64),
        },
        key="v",
    )
    cluster.load_batches([cedge, cvert])  # round-robin, like the flat list
    ledger.record_routing(
        route_by_key(cluster, label="certificate/route", return_histogram=True)
    )
    ledger.charge("termination_test", 1)

    # Local dedup: covered left vertices per machine, via unique
    # (machine, u) pairs — the vectorized form of the per-machine set.
    cedge, cedge_home = cluster.rows("cedge")
    is_top = cedge.cols["istop"]
    n_verts = max(1, g.n_vertices)
    codes = cedge_home[is_top] * np.int64(n_verts) + cedge.cols["u"][is_top]
    covered = np.bincount(
        (np.unique(codes) // n_verts).astype(np.int64), minlength=M
    ).astype(np.int64)
    cluster.append_rows(
        ColumnBatch("__covered__", {"count": covered}),
        np.arange(M, dtype=np.int64),
    )

    # Per-machine partials (|N'|, |L₀|, Σ alloc above L₀).  The mass
    # bincount accumulates in row order = the object fold's storage
    # scan order, so the float sums are bit-identical.
    cvert, cvert_home = cluster.rows("cvert")
    isbot = cvert.cols["isbot"]
    partials = np.zeros((M, 3), dtype=np.float64)
    partials[:, 0] = covered
    partials[:, 1] = np.bincount(cvert_home[isbot], minlength=M)
    partials[:, 2] = np.bincount(
        cvert_home[~isbot], weights=cvert.cols["alloc"][~isbot], minlength=M
    )
    (n_prime, l0_size, upper_mass), reduce_rounds = tree_reduce_vector(
        cluster, partials, label="certificate/reduce"
    )
    ledger.charge("termination_test", reduce_rounds)
    n_prime = int(n_prime)
    l0_size = int(l0_size)
    upper_mass = float(upper_mass)
    return CertificateStatus(
        rounds=run.rounds_completed,
        n_prime=n_prime,
        l0_size=l0_size,
        top_size=int(top.sum()),
        upper_mass=upper_mass,
        small_frontier=n_prime <= l0_size,
        mass_condition=upper_mass >= (1.0 - run.epsilon / 2.0) * n_prime,
        epsilon=run.epsilon,
    )


def solve_allocation_mpc(
    instance: AllocationInstance,
    epsilon: float,
    *,
    alpha: float = 0.5,
    lam: Optional[int] = None,
    sample_budget: Optional[int] = None,
    mode: Literal["simulate", "faithful"] = "simulate",
    budget_policy: Literal["fixed", "adaptive"] = "fixed",
    safety_fraction: float = 0.8,
    estimator: Literal["stratified", "pooled"] = "stratified",
    sampler: Optional[Literal["keyed", "fast"]] = None,
    seed=None,
    max_guesses: int = 8,
    space_slack: float = 64.0,
    block_override: Optional[int] = None,
    certificate_cadence: Literal["per_phase", "per_guess"] = "per_phase",
    workspace: Optional[RoundWorkspace] = None,
    substrate: Optional[str] = None,
    initial_exponents: Optional[np.ndarray] = None,
) -> MPCResult:
    """Theorem 3: (2+O(ε))-approximate fractional allocation in MPC.

    ``lam=None`` activates the λ-guessing loop; a known bound skips it.
    The returned guarantee is Theorem 17's ``2+16ε`` (the sampled
    algorithm's factor, ε ≤ 1/4) once a certificate is obtained.
    Boosting to (1+ε) is :mod:`repro.boosting`'s job downstream.

    ``sampler`` defaults to ``"keyed"`` in faithful mode (required —
    samples must be re-drawable inside a collected ball) and ``"fast"``
    in simulate mode; pass ``"keyed"`` explicitly to make the two modes
    bit-identical for one seed (the cross-mode equivalence test).

    ``block_override`` forces the phase length B instead of eq. (4)'s
    value — eq. (4) only exceeds 1 at asymptotic scales, so E5's
    compression-economics sweep forces B to expose the ``τ/B·log B``
    trade-off at laptop scale.  ``certificate_cadence`` selects between
    testing the stopping conditions after every phase (strictly better,
    the default) and only at the end of each guess's full budget (the
    literal §3.2.2 schedule, which E6 uses to measure the guessing
    overhead the paper's analysis bounds).

    ``substrate`` picks the faithful-mode cluster representation
    (``"object"`` / ``"columnar"``, DESIGN.md §7); ``None`` defers to
    ``REPRO_MPC_SUBSTRATE``.  Both substrates produce identical round
    ledgers and bit-identical allocations (the parity suite); columnar
    is the scale path for faithful runs.

    ``initial_exponents`` warm-starts the dynamics from a retained β
    exponent vector instead of the cold ``b ≡ 0`` (DESIGN.md §8): the
    dynamics converge from any start and the λ-free certificate is
    sound at any round, so every guess runs from the given vector and
    the usual certificate gates termination.  The converged vector is
    returned as ``final_exponents`` for the next warm solve.

    ``budget_policy="adaptive"`` (faithful mode only, DESIGN.md §13)
    replaces the fixed per-round sample budget with an
    :class:`~repro.mpc.adaptive.AdaptiveBudgetController`: each phase
    runs at a budget chosen so the predicted peak machine words stay
    under ``safety_fraction·S``, ramping when headroom exists and
    throttling — or discarding the attempt and retrying halved, via
    the fresh-cluster-per-phase protocol — before a
    :class:`~repro.mpc.machine.SpaceViolation` kills the run.  The
    allocation is still produced by the same keyed sampler and checked
    by the same faithful certificate; only the per-phase budgets
    differ from a fixed run.  Every decision lands in
    ``ledger.trajectory``.
    """
    epsilon = check_fraction(epsilon, "epsilon", inclusive_high=0.25)
    if not (0.0 < alpha < 1.0):
        raise ValueError(f"alpha must lie in (0,1), got {alpha}")
    if budget_policy not in ("fixed", "adaptive"):
        raise ValueError(
            f"budget_policy must be 'fixed' or 'adaptive', got {budget_policy!r}"
        )
    safety_fraction = check_fraction(
        safety_fraction, "safety_fraction", inclusive_high=1.0
    )
    adaptive = budget_policy == "adaptive"
    if adaptive and mode != "faithful":
        raise ValueError("budget_policy='adaptive' requires mode='faithful'")
    graph = instance.graph
    if workspace is None:
        workspace = workspace_for(graph)
    n = max(2, graph.n_vertices)
    ledger = MPCRoundLedger()

    guesses = [lam] if lam is not None else [params.lambda_guess(i) for i in range(max_guesses)]
    run: Optional[SampledRun] = None
    certificate: Optional[CertificateStatus] = None
    used_guess: Optional[int] = None

    for guess in guesses:
        block = block_override or params.block_length(n, guess, epsilon, alpha)
        tau = params.tau_two_approx(guess, epsilon)
        if mode == "faithful" and sampler == "fast":
            raise ValueError("faithful mode requires the keyed sampler")
        effective_sampler = sampler or ("keyed" if mode == "faithful" else "fast")
        run = SampledRun(
            graph,
            instance.capacities,
            epsilon,
            block=block,
            sample_budget=sample_budget,
            estimator=estimator,
            sampler=effective_sampler,
            seed=seed,
            record_estimates=False,
            workspace=workspace,
            initial_exponents=initial_exponents,
        )
        cluster: Optional[MPCCluster | ColumnarCluster] = None
        controller: Optional[AdaptiveBudgetController] = None
        s_words: Optional[int] = None
        total_words = 3 * (graph.n_edges + graph.n_vertices) + 16
        if mode == "faithful":
            # The per-machine budget cluster_for will enforce (words =
            # max(16, ⌊slack·n^α⌋)) — the adaptive controller's S.
            s_words = max(16, int(space_slack * n ** alpha))
            if adaptive:
                # Fresh controller per guess: budget trajectories are
                # per-(λ, schedule), not shared across guesses.
                controller = AdaptiveBudgetController(
                    budget_words=s_words,
                    max_budget=run.sample_budget,
                    safety_fraction=safety_fraction,
                )
            else:
                cluster = cluster_for(
                    total_words, n_for_alpha=n, alpha=alpha, slack=space_slack,
                    strict=True, substrate=substrate,
                )
        ledger.guesses.append(guess)
        schedule = _phase_round_schedule(block)

        while run.rounds_completed < tau:
            rounds_this_phase = min(block, tau - run.rounds_completed)
            if mode == "faithful" and adaptive:
                assert controller is not None and s_words is not None
                budget, decision = controller.propose()
                attempts = 0
                while True:
                    # Attempt the phase's communication at the proposed
                    # budget on a fresh cluster with a scratch ledger —
                    # _faithful_phase does not mutate the run, so a
                    # violating attempt can be discarded and retried
                    # lower before run_phase commits anything.
                    attempts += 1
                    run.sample_budget = budget
                    cluster = cluster_for(
                        total_words, n_for_alpha=n, alpha=alpha,
                        slack=space_slack, strict=True, substrate=substrate,
                    )
                    scratch = MPCRoundLedger()
                    try:
                        metrics = _faithful_phase(
                            run, cluster, rounds_this_phase, scratch
                        )
                    except SpaceViolation:
                        observed = max(cluster.peak_machine_words(), s_words + 1)
                        ledger.trajectory.append({
                            "phase": ledger.phases,
                            "guess": guess,
                            "round_start": run.rounds_completed,
                            "rounds": rounds_this_phase,
                            "sample_budget": budget,
                            "decision": "backoff",
                            "attempts": attempts,
                            "accepted": False,
                            "predicted_peak_words": controller.predicted_peak(budget),
                            "observed_peak_words": observed,
                            "budget_words": s_words,
                            "safety_fraction": safety_fraction,
                        })
                        retry = controller.backoff(budget, observed)
                        if retry is None:
                            raise
                        budget, decision = retry, "backoff"
                        continue
                    break
                predicted = controller.predicted_peak(budget)
                observed = cluster.peak_machine_words()
                controller.observe(budget, observed)
                for category, rounds_used in scratch.by_category.items():
                    ledger.charge(category, rounds_used)
                ledger.peak_machine_words = max(
                    ledger.peak_machine_words, scratch.peak_machine_words
                )
                ledger.peak_global_words = max(
                    ledger.peak_global_words, scratch.peak_global_words
                )
                ledger.peak_routed_records = max(
                    ledger.peak_routed_records, scratch.peak_routed_records
                )
                ledger.violations.extend(scratch.violations)
                ledger.trajectory.append({
                    "phase": ledger.phases,
                    "guess": guess,
                    "round_start": run.rounds_completed,
                    "rounds": rounds_this_phase,
                    "sample_budget": budget,
                    "decision": decision,
                    "attempts": attempts,
                    "accepted": True,
                    "predicted_peak_words": predicted,
                    "observed_peak_words": observed,
                    "budget_words": s_words,
                    "safety_fraction": safety_fraction,
                    **metrics,
                })
            elif mode == "faithful":
                assert cluster is not None
                metrics = _faithful_phase(run, cluster, rounds_this_phase, ledger)
                ledger.trajectory.append({
                    "phase": ledger.phases,
                    "guess": guess,
                    "round_start": run.rounds_completed,
                    "rounds": rounds_this_phase,
                    "sample_budget": run.sample_budget,
                    "decision": "fixed",
                    "attempts": 1,
                    "accepted": True,
                    "predicted_peak_words": None,
                    "observed_peak_words": cluster.peak_machine_words(),
                    "budget_words": s_words,
                    "safety_fraction": None,
                    **metrics,
                })
            else:
                for category, cost in schedule.items():
                    if category != "termination_test":
                        ledger.charge(category, cost)
            run.run_phase(rounds_this_phase)
            ledger.phases += 1
            # Termination test: per phase (sound at any round) or only
            # at the end of the guess's budget (§3.2.2's schedule).
            at_budget_end = run.rounds_completed >= tau
            if certificate_cadence == "per_guess" and not at_budget_end:
                continue
            if mode == "faithful":
                assert cluster is not None
                cert_log_start = len(cluster.round_log)
                certificate = _faithful_certificate_test(run, cluster, ledger)
                if ledger.trajectory:
                    # Certificate traffic belongs to the phase that
                    # triggered the test — fold it into that row's
                    # per-category words-moved column.
                    row = ledger.trajectory[-1]
                    moved = dict(row.get("words_moved", {}))
                    for category, words in _category_words_moved(
                        cluster, cert_log_start
                    ).items():
                        moved[category] = moved.get(category, 0) + words
                    row["words_moved"] = moved
                if adaptive:
                    # The accepted cluster is discarded after this
                    # phase, so certificate-time peaks must be folded
                    # into the ledger here (the fixed path carries them
                    # into the next phase's cumulative peaks instead).
                    ledger.peak_machine_words = max(
                        ledger.peak_machine_words, cluster.peak_machine_words()
                    )
                    ledger.peak_global_words = max(
                        ledger.peak_global_words, cluster.peak_global_words()
                    )
            else:
                ledger.charge("termination_test", schedule["termination_test"])
                certificate = _evaluate_certificate_from_run(run, epsilon)
            if certificate.satisfied:
                break
        if certificate is not None and certificate.satisfied:
            used_guess = guess
            break

    if run is None or certificate is None or not certificate.satisfied:
        raise RuntimeError(
            f"certificate did not fire within {max_guesses} λ guesses — "
            "the guess cap is below the instance's arboricity"
        )

    allocation = run.fractional_allocation().require_feasible(
        graph, instance.capacities, tol=1e-6
    )
    # Theorem 17 factor for the sampled algorithm (k = 4 thresholds).
    guarantee = params.approx_factor_adaptive(epsilon, 4.0)
    meta = {
        "mode": mode,
        "alpha": alpha,
        "used_guess": used_guess,
        "lambda_known": lam is not None,
        "sample_budget": run.sample_budget,
        "block": run.block,
        "substrate": _active_substrate(substrate) if mode == "faithful" else None,
        "warm_start": initial_exponents is not None,
        "budget_policy": budget_policy,
    }
    if adaptive:
        meta["safety_fraction"] = safety_fraction
        # Bit-check: the throttled run's faithful certificate must
        # agree with the host-side evaluation of the same run state.
        meta["certificate_crosscheck"] = _certificates_agree(
            certificate, _evaluate_certificate_from_run(run, epsilon)
        )
    return MPCResult(
        allocation=allocation,
        match_weight=run.match_weight(),
        local_rounds=run.rounds_completed,
        mpc_rounds=ledger.total_rounds,
        ledger=ledger,
        certificate=certificate,
        guarantee=guarantee,
        epsilon=epsilon,
        meta=meta,
        final_exponents=run.beta_exp.copy(),
    )
