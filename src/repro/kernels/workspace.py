"""Cached per-graph invariants for the round kernels.

The historical hot loops re-derived the same arrays every round:
``np.repeat(seg_max, degrees)`` rebuilt the slot-owner expansion from
scratch, ``reduceat`` offsets were recomputed per call, and every
temporary was freshly allocated.  All of those are *per-graph*
invariants — a graph's CSR structure never changes — so they belong in
a cache keyed by the graph, built once and reused by every round, every
run, and (via :func:`workspace_for`) every instance sharing the graph.

Two layers:

* :class:`SegmentLayout` — one CSR side (an ``indptr``): lazily caches
  ``degrees``, the ``slot_owner`` gather index (slot → row, the exact
  inverse of ``np.repeat(per_row, degrees)``), the non-empty-row mask
  and ``reduceat`` start offsets.
* :class:`RoundWorkspace` — both sides of a bipartite graph plus the
  edge arrays the round kernel gathers/scatters through, and the
  preallocated per-row float buffer the optimized backend casts β
  exponents into each round.

See DESIGN.md §6.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:  # avoid a runtime cycle: graphs.bipartite imports kernels
    from repro.graphs.bipartite import BipartiteGraph

__all__ = [
    "SegmentLayout",
    "RoundWorkspace",
    "workspace_for",
    "resolve_workspace",
    "transplant_workspace",
    "attach_workspace",
]

_WORKSPACE_ATTR = "_round_workspace"


class SegmentLayout:
    """Lazily cached invariants and scratch buffers for one CSR side."""

    __slots__ = (
        "indptr",
        "n_rows",
        "n_slots",
        "_degrees",
        "_slot_owner",
        "_nonempty",
        "_reduce_starts",
    )

    def __init__(self, indptr: np.ndarray):
        indptr = np.asarray(indptr)
        self.indptr = indptr
        self.n_rows = int(indptr.shape[0] - 1)
        self.n_slots = int(indptr[-1]) if indptr.shape[0] else 0
        self._degrees: Optional[np.ndarray] = None
        self._slot_owner: Optional[np.ndarray] = None
        self._nonempty: Optional[np.ndarray] = None
        self._reduce_starts: Optional[np.ndarray] = None

    # -- structural invariants -----------------------------------------
    @property
    def degrees(self) -> np.ndarray:
        if self._degrees is None:
            deg = np.diff(self.indptr)
            deg.setflags(write=False)
            self._degrees = deg
        return self._degrees

    @property
    def slot_owner(self) -> np.ndarray:
        """Row id of every slot — ``per_row[slot_owner]`` equals
        ``np.repeat(per_row, degrees)`` without the per-call repeat."""
        if self._slot_owner is None:
            owner = np.repeat(
                np.arange(self.n_rows, dtype=np.int64), self.degrees
            )
            owner.setflags(write=False)
            self._slot_owner = owner
        return self._slot_owner

    @property
    def nonempty(self) -> np.ndarray:
        """Boolean mask of rows with at least one slot."""
        if self._nonempty is None:
            mask = self.indptr[:-1] < self.indptr[1:]
            mask.setflags(write=False)
            self._nonempty = mask
        return self._nonempty

    @property
    def reduce_starts(self) -> np.ndarray:
        """``reduceat`` offsets: row starts restricted to non-empty rows."""
        if self._reduce_starts is None:
            starts = np.ascontiguousarray(self.indptr[:-1][self.nonempty])
            starts.setflags(write=False)
            self._reduce_starts = starts
        return self._reduce_starts

    @classmethod
    def from_invariants(
        cls,
        indptr: np.ndarray,
        *,
        degrees: np.ndarray,
        slot_owner: np.ndarray,
        nonempty: np.ndarray,
        reduce_starts: np.ndarray,
    ) -> "SegmentLayout":
        """A layout whose lazy invariants are pre-filled.

        The shared-memory attach path (DESIGN.md §12): a shard worker
        receives the invariant arrays another process already derived
        (published alongside the CSR arrays), so the layout never pays
        the ``repeat``/``diff`` derivation again.  The arrays must be
        exactly what the lazy properties would compute for ``indptr`` —
        the sharding layer publishes them straight off an owner-side
        layout, so that holds by construction.  Arrays are treated as
        frozen; shapes are validated, values are trusted.
        """
        layout = cls(indptr)
        if degrees.shape != (layout.n_rows,):
            raise ValueError(
                f"degrees must have shape ({layout.n_rows},), got {degrees.shape}"
            )
        if slot_owner.shape != (layout.n_slots,):
            raise ValueError(
                f"slot_owner must have shape ({layout.n_slots},), "
                f"got {slot_owner.shape}"
            )
        if nonempty.shape != (layout.n_rows,):
            raise ValueError(
                f"nonempty must have shape ({layout.n_rows},), got {nonempty.shape}"
            )
        layout._degrees = degrees
        layout._slot_owner = slot_owner
        layout._nonempty = nonempty
        layout._reduce_starts = reduce_starts
        return layout

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SegmentLayout(n_rows={self.n_rows}, n_slots={self.n_slots})"


class RoundWorkspace:
    """Everything the round kernel needs about one graph, cached.

    Holds both :class:`SegmentLayout` sides (shared with the graph's
    own cached layouts, so segment helpers and the round kernel reuse
    one set of invariants) and references to the frozen edge arrays.
    Obtain through :func:`workspace_for`, which caches one workspace
    per graph — reusing it across rounds, runs and instances is what
    removes the per-round re-expansion cost.
    """

    __slots__ = (
        "graph",
        "left",
        "right",
        "left_adj",
        "right_adj",
        "edge_u",
        "edge_v",
        "n_left",
        "n_right",
        "n_edges",
        "_scratch",
    )

    def __init__(self, graph: "BipartiteGraph"):
        self.graph = graph
        self.left = graph.left_layout
        self.right = graph.right_layout
        self.left_adj = graph.left_adj
        self.right_adj = graph.right_adj
        self.edge_u = graph.edge_u
        self.edge_v = graph.edge_v
        self.n_left = graph.n_left
        self.n_right = graph.n_right
        self.n_edges = graph.n_edges
        self._scratch = threading.local()

    @property
    def beta_f64(self) -> np.ndarray:
        """Preallocated per-right-vertex float64 buffer: the optimized
        backend casts integer β exponents into it every round instead
        of allocating a fresh cast per gather.  Thread-local, so a
        workspace captured on one thread and used on others (runs built
        up front, stepped in a pool) never races on scratch state."""
        buf = getattr(self._scratch, "beta_f64", None)
        if buf is None:
            buf = np.empty(self.n_right, dtype=np.float64)
            self._scratch.beta_f64 = buf
        return buf

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RoundWorkspace(n_left={self.n_left}, n_right={self.n_right}, "
            f"m={self.n_edges})"
        )


def workspace_for(graph: "BipartiteGraph") -> RoundWorkspace:
    """The cached :class:`RoundWorkspace` of ``graph`` (built on first
    use; everything sharing a graph object shares the workspace).

    Safe to share across threads: structural invariants are immutable
    once built, and the scratch buffers are thread-local inside the
    workspace, so concurrent solves on one graph never race — however
    the runs were constructed.
    """
    ws = graph.__dict__.get(_WORKSPACE_ATTR)
    if ws is None:
        ws = RoundWorkspace(graph)
        # The dataclass is frozen; writing through __dict__ mirrors how
        # functools.cached_property caches on frozen dataclasses.
        graph.__dict__[_WORKSPACE_ATTR] = ws
    return ws


def transplant_workspace(
    new_graph: "BipartiteGraph", parent: RoundWorkspace
) -> RoundWorkspace:
    """Build ``new_graph``'s workspace incrementally from a parent's.

    The dynamic-instance path (DESIGN.md §9): applying a structural
    delta produces a *new* graph object, but deltas rarely disturb both
    CSR sides — a rewiring that preserves degrees, or a capacity drain
    that only touches one side's rows, leaves an ``indptr`` unchanged.
    A :class:`SegmentLayout` is a pure function of its ``indptr``, so
    any side whose ``indptr`` matches the parent's adopts the parent's
    layout object wholesale, carrying over every lazily materialized
    invariant (``degrees``, ``slot_owner``, ``reduceat`` offsets)
    instead of recomputing them on the new graph's first solve.

    Capacity-only deltas never reach this function: they reuse the
    graph object itself, so :func:`workspace_for` already returns the
    resident workspace.  Sides that did change are rebuilt lazily as
    usual.  The result is installed as ``new_graph``'s cached
    workspace, exactly as if :func:`workspace_for` had built it.
    """
    existing = new_graph.__dict__.get(_WORKSPACE_ATTR)
    if existing is not None:
        return existing
    if parent.graph is new_graph:
        return parent

    def adopt(side: str, indptr_field: str, layout: SegmentLayout) -> None:
        # Seed the graph's cached_property slot before RoundWorkspace
        # reads it, so workspace and graph share one layout per side.
        # The graph's indptr field is replaced by the layout's own
        # (equal, read-only) array: the optimized backend trusts a
        # layout only when `layout.indptr is indptr` holds for the
        # indptr it was called with, so an equal-but-distinct array
        # would silently demote every segment call to the slow path.
        if side in new_graph.__dict__:
            return
        if np.array_equal(layout.indptr, getattr(new_graph, indptr_field)):
            new_graph.__dict__[side] = layout
            object.__setattr__(new_graph, indptr_field, layout.indptr)

    adopt("left_layout", "left_indptr", parent.left)
    adopt("right_layout", "right_indptr", parent.right)
    ws = RoundWorkspace(new_graph)
    new_graph.__dict__[_WORKSPACE_ATTR] = ws
    return ws


def attach_workspace(
    graph: "BipartiteGraph",
    left_layout: SegmentLayout,
    right_layout: SegmentLayout,
) -> RoundWorkspace:
    """Install prebuilt layouts as ``graph``'s workspace (shm attach).

    The sharded-serving counterpart of :func:`transplant_workspace`
    (DESIGN.md §12): a shard worker rebuilds an instance from
    shared-memory views and *attaches* layouts assembled with
    :meth:`SegmentLayout.from_invariants` instead of deriving them.
    Each layout's ``indptr`` must be the graph's own array object (the
    attach path builds layouts straight over the graph's shm-backed
    views), so the optimized backend's ``layout.indptr is indptr``
    fast-path check keeps holding.  Returns the installed workspace;
    a workspace already cached on the graph wins (idempotent).
    """
    existing = graph.__dict__.get(_WORKSPACE_ATTR)
    if existing is not None:
        return existing
    if left_layout.indptr is not graph.left_indptr:
        raise ValueError("left_layout.indptr is not the graph's left_indptr array")
    if right_layout.indptr is not graph.right_indptr:
        raise ValueError("right_layout.indptr is not the graph's right_indptr array")
    graph.__dict__["left_layout"] = left_layout
    graph.__dict__["right_layout"] = right_layout
    ws = RoundWorkspace(graph)
    graph.__dict__[_WORKSPACE_ATTR] = ws
    return ws


def resolve_workspace(
    graph: "BipartiteGraph", workspace: Optional[RoundWorkspace]
) -> RoundWorkspace:
    """Validate an injected workspace against ``graph``, or resolve the
    cached one.  The one guard every workspace-accepting entry point
    shares: a workspace built for a different graph is always a bug."""
    if workspace is None:
        return workspace_for(graph)
    if workspace.graph is not graph:
        raise ValueError("workspace was built for a different graph")
    return workspace
