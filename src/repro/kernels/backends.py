"""Pluggable kernel backends and their registry.

A backend implements the segment primitives over raw CSR arrays.  The
contract every backend must honour (enforced by the parity tests):
**identical floating-point operations in identical order** — backends
may differ in how much they cache and reuse, never in the arithmetic.
That is what keeps β trajectories bit-identical across backends and
makes the optimized path a safe default.

Two tiers of that contract since the native backend (DESIGN.md §11):
the numpy backends (``reference``/``optimized``) are bit-identical to
each other, while the C ``native`` backend is bit-identical for
order-independent primitives (scatter, max, the exponentials) and
agrees to a few ulps wherever fusion folds row sums sequentially
instead of numpy's SIMD/pairwise order — the parity suite pins both
tiers.

Selection: ``REPRO_KERNEL_BACKEND=reference|optimized|native`` in the
environment, or :func:`set_backend` / :func:`use_backend` at runtime.
The default is ``"optimized"``.  Backends can be *registered yet
unavailable* on a host (``native`` needs a C compiler):
:func:`backend_availability` reports the reason, and resolving an
unavailable backend raises it.

See DESIGN.md §6 and §11.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from typing import Callable, Dict, Optional, Union

import numpy as np

from repro.kernels.workspace import SegmentLayout

__all__ = [
    "KernelBackend",
    "ReferenceBackend",
    "OptimizedBackend",
    "AutoBackend",
    "register_backend",
    "available_backends",
    "backend_availability",
    "get_backend",
    "set_backend",
    "use_backend",
]

ENV_VAR = "REPRO_KERNEL_BACKEND"
DEFAULT_BACKEND = "optimized"


class KernelBackend:
    """Base class: the reference NumPy implementations.

    Each primitive takes the raw ``indptr`` plus an optional
    :class:`SegmentLayout` carrying cached invariants; the reference
    implementations ignore the layout (recomputing everything per
    call, exactly like the historical per-module copies did).
    """

    name = "reference"

    # -- segment reductions --------------------------------------------
    def segment_sum(
        self,
        per_slot: np.ndarray,
        indptr: np.ndarray,
        *,
        layout: Optional[SegmentLayout] = None,
    ) -> np.ndarray:
        """Row sums of a CSR-aligned array; empty rows yield 0."""
        per_slot = np.asarray(per_slot)
        n = indptr.shape[0] - 1
        out = np.zeros(
            n,
            dtype=np.result_type(per_slot.dtype, np.float64)
            if per_slot.dtype.kind == "f"
            else per_slot.dtype,
        )
        if per_slot.shape[0] == 0 or n == 0:
            return out
        starts = indptr[:-1]
        nonempty = starts < indptr[1:]
        if not np.any(nonempty):
            return out
        out[nonempty] = np.add.reduceat(per_slot, starts[nonempty])
        return out

    def segment_max(
        self,
        per_slot: np.ndarray,
        indptr: np.ndarray,
        empty: float,
        *,
        layout: Optional[SegmentLayout] = None,
    ) -> np.ndarray:
        """Row maxima of a CSR-aligned array; empty rows yield ``empty``."""
        per_slot = np.asarray(per_slot)
        n = indptr.shape[0] - 1
        out = np.full(
            n, empty, dtype=per_slot.dtype if per_slot.dtype.kind == "f" else np.float64
        )
        if per_slot.shape[0] == 0 or n == 0:
            return out
        starts = indptr[:-1]
        nonempty = starts < indptr[1:]
        if not np.any(nonempty):
            return out
        out[nonempty] = np.maximum.reduceat(per_slot, starts[nonempty])
        return out

    # -- expansion / gather --------------------------------------------
    def expand_rows(
        self,
        per_row: np.ndarray,
        indptr: np.ndarray,
        *,
        layout: Optional[SegmentLayout] = None,
    ) -> np.ndarray:
        """Broadcast a per-row array to slots: ``repeat(per_row, deg)``."""
        return np.repeat(per_row, np.diff(indptr))

    def gather(
        self,
        values: np.ndarray,
        indices: np.ndarray,
        *,
        layout: Optional[SegmentLayout] = None,
    ) -> np.ndarray:
        """``values[indices]`` — per-slot gather of per-vertex state."""
        return values[indices]

    def gather_as_float(
        self,
        values: np.ndarray,
        indices: np.ndarray,
        *,
        row_buf: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Gather integer per-vertex state to slots as float64.

        Reference order: gather first, cast the (larger) slot array.
        The optimized backend casts the per-vertex array into a
        persistent ``row_buf`` first and gathers floats — identical
        values (int64→float64 is exact at these magnitudes), one cast
        of n instead of m elements, and no per-round cast allocation.
        """
        return values[indices].astype(np.float64)

    # -- the shared shifted-exponent softmax ---------------------------
    def segment_softmax_shifted(
        self,
        exp_slots: np.ndarray,
        indptr: np.ndarray,
        scale: float,
        *,
        layout: Optional[SegmentLayout] = None,
        mutate_input: bool = False,
    ) -> np.ndarray:
        """Normalized per-slot weights from per-slot integer exponents.

        Computes ``w = exp((e − rowmax(e))·scale)`` then ``w / rowsum(w)``
        within every CSR row.  Shifting by the row maximum keeps every
        weight in ``(0, 1]`` and every denominator in ``[1, deg]``, so
        no exponent magnitude can overflow (DESIGN.md §5).

        ``mutate_input=True`` tells the backend the caller owns
        ``exp_slots`` and it may be consumed as scratch (the optimized
        backend computes through it in place); the reference backend
        always copies.
        """
        e = np.asarray(exp_slots).astype(np.float64)
        seg_max = self.segment_max(e, indptr, 0.0, layout=layout)
        shifted = e - self.expand_rows(seg_max, indptr, layout=layout)
        w = np.exp(shifted * scale)
        denom = self.segment_sum(w, indptr, layout=layout)
        return w / self.expand_rows(denom, indptr, layout=layout)

    # -- scatter --------------------------------------------------------
    def scatter_add(
        self,
        index: np.ndarray,
        *,
        weights: Optional[np.ndarray] = None,
        minlength: int = 0,
    ) -> np.ndarray:
        """Scatter-add ``weights`` (1s when omitted) into bins.

        Equivalent to ``np.add.at(zeros(minlength), index, weights)``
        but via ``np.bincount``; with duplicates both accumulate in
        element order, so results are bit-identical.
        """
        return np.bincount(index, weights=weights, minlength=minlength)

    # -- the fused round hook -------------------------------------------
    def proportional_round(
        self,
        workspace,
        beta_exp: np.ndarray,
        scale: float,
        *,
        left_units: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """One evaluation of the proportional-split round.

        The backend-level hook behind
        :func:`repro.kernels.rounds.proportional_round` (which carries
        the public contract).  The default implementation composes the
        four segment primitives — gather, shifted softmax, optional
        unit scaling, scatter — so the numpy backends stay
        operation-identical to the historical pipeline; the native
        backend overrides it with one fused C pass over the CSR
        arrays (DESIGN.md §11).
        """
        ws = workspace
        e_slot = self.gather_as_float(beta_exp, ws.left_adj, row_buf=ws.beta_f64)
        # The gather above hands us a fresh per-slot array, so the
        # softmax may compute through it in place.
        x = self.segment_softmax_shifted(
            e_slot, ws.left.indptr, scale, layout=ws.left, mutate_input=True
        )
        if left_units is not None:
            units_slot = self.gather(
                np.asarray(left_units, dtype=np.float64), ws.edge_u
            )
            np.multiply(x, units_slot, out=x)
        alloc = self.scatter_add(ws.left_adj, weights=x, minlength=ws.n_right)
        return x, alloc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class ReferenceBackend(KernelBackend):
    """Alias of the base reference implementations."""

    name = "reference"


class OptimizedBackend(KernelBackend):
    """Cached-invariant backend (bit-identical values, fewer passes).

    With a :class:`SegmentLayout` the row expansion becomes a fancy
    gather through the cached ``slot_owner`` index (measurably faster
    than per-call ``np.repeat``; note ``np.take(..., out=)`` is a slow
    path in NumPy, so gathers deliberately produce fresh arrays),
    ``reduceat`` offsets come precomputed, and the softmax computes
    through its gathered input in place — three per-edge allocations
    per round instead of seven.  Without a layout every primitive
    falls back to the reference path, so the backend is always safe.
    """

    name = "optimized"

    def segment_sum(self, per_slot, indptr, *, layout=None):
        if layout is None or layout.indptr is not indptr:
            return super().segment_sum(per_slot, indptr, layout=None)
        per_slot = np.asarray(per_slot)
        out = np.zeros(
            layout.n_rows,
            dtype=np.result_type(per_slot.dtype, np.float64)
            if per_slot.dtype.kind == "f"
            else per_slot.dtype,
        )
        if per_slot.shape[0] == 0 or layout.n_rows == 0:
            return out
        starts = layout.reduce_starts
        if starts.shape[0] == 0:
            return out
        out[layout.nonempty] = np.add.reduceat(per_slot, starts)
        return out

    def segment_max(self, per_slot, indptr, empty, *, layout=None):
        if layout is None or layout.indptr is not indptr:
            return super().segment_max(per_slot, indptr, empty, layout=None)
        per_slot = np.asarray(per_slot)
        out = np.full(
            layout.n_rows,
            empty,
            dtype=per_slot.dtype if per_slot.dtype.kind == "f" else np.float64,
        )
        if per_slot.shape[0] == 0 or layout.n_rows == 0:
            return out
        starts = layout.reduce_starts
        if starts.shape[0] == 0:
            return out
        out[layout.nonempty] = np.maximum.reduceat(per_slot, starts)
        return out

    def expand_rows(self, per_row, indptr, *, layout=None):
        if layout is None or layout.indptr is not indptr:
            return super().expand_rows(per_row, indptr, layout=None)
        return per_row[layout.slot_owner]

    def gather_as_float(self, values, indices, *, row_buf=None):
        values = np.asarray(values)
        if row_buf is None or row_buf.shape != values.shape:
            return super().gather_as_float(values, indices, row_buf=None)
        # Cast n per-vertex values into the persistent buffer once,
        # then gather floats — exact (small-int) values, same as the
        # reference's gather-then-cast, minus a per-round m-sized cast.
        np.copyto(row_buf, values, casting="unsafe")
        return row_buf[indices]

    def segment_softmax_shifted(
        self, exp_slots, indptr, scale, *, layout=None, mutate_input=False
    ):
        e = np.asarray(exp_slots)
        if layout is None or layout.indptr is not indptr:
            return super().segment_softmax_shifted(
                e, indptr, scale, layout=None
            )
        if e.dtype != np.float64 or not mutate_input:
            e = e.astype(np.float64)
        if layout.n_slots == 0:
            return e
        owner = layout.slot_owner
        seg_max = self.segment_max(e, indptr, 0.0, layout=layout)
        np.subtract(e, seg_max[owner], out=e)
        np.multiply(e, scale, out=e)
        np.exp(e, out=e)
        denom = self.segment_sum(e, indptr, layout=layout)
        np.divide(e, denom[owner], out=e)
        return e


class AutoBackend(OptimizedBackend):
    """Size-dispatching backend: optimized below the native crossover,
    native above it.

    ``BENCH_kernels.json`` shows the native fused round *losing* to the
    optimized numpy path on small instances (0.8x at ~1.5k edges — the
    per-call ctypes overhead dominates) and winning decisively at scale
    (≥2.5x at 160k edges).  ``auto`` applies that measurement: the
    fused :meth:`proportional_round` delegates to the native backend
    once ``workspace.n_edges`` reaches :data:`AUTO_NATIVE_MIN_EDGES`,
    and otherwise — and for every unfused segment primitive — behaves
    exactly like ``optimized``.

    Degradation matches the registry contract (DESIGN.md §11): the
    native backend is probed lazily on the first large call; when it is
    unusable (no C compiler) ``auto`` stays on the optimized path for
    every size instead of raising, so it is always safe to select.
    """

    name = "auto"

    #: Edge-count crossover between the measured 0.8x (1558 edges) and
    #: 3.3x (15958 edges) native-vs-optimized points in
    #: BENCH_kernels.json.
    AUTO_NATIVE_MIN_EDGES = 4000

    def __init__(self, *, native_min_edges: Optional[int] = None):
        self.native_min_edges = (
            self.AUTO_NATIVE_MIN_EDGES if native_min_edges is None else int(native_min_edges)
        )
        self._native: Optional[KernelBackend] = None
        self._native_checked = False

    def _native_delegate(self) -> Optional[KernelBackend]:
        if not self._native_checked:
            self._native_checked = True
            try:
                from repro.kernels.native import NativeBackend, native_availability

                ok, _reason = native_availability()
                if ok:
                    self._native = NativeBackend()
            except Exception:
                self._native = None
        return self._native

    def proportional_round(self, workspace, beta_exp, scale, *, left_units=None):
        if workspace.n_edges >= self.native_min_edges:
            native = self._native_delegate()
            if native is not None:
                return native.proportional_round(
                    workspace, beta_exp, scale, left_units=left_units
                )
        return super().proportional_round(
            workspace, beta_exp, scale, left_units=left_units
        )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_FACTORIES: Dict[str, Callable[[], KernelBackend]] = {}
_PROBES: Dict[str, Callable[[], "tuple[bool, Optional[str]]"]] = {}
_ACTIVE: Optional[KernelBackend] = None


def register_backend(
    name: str,
    factory: Callable[[], KernelBackend],
    *,
    availability: Optional[Callable[[], "tuple[bool, Optional[str]]"]] = None,
) -> None:
    """Register a backend factory under ``name`` (last write wins).

    ``availability`` optionally probes whether the backend can work on
    this host without instantiating it, returning ``(ok, reason)`` —
    the degradation contract for backends with system requirements
    (the native backend needs a C compiler, DESIGN.md §11).  Backends
    without a probe are assumed always available.
    """
    _FACTORIES[name] = factory
    if availability is not None:
        _PROBES[name] = availability
    else:
        _PROBES.pop(name, None)


def _native_factory() -> KernelBackend:
    # Lazy import: neither importing this module nor listing backends
    # compiles anything; the build happens at first resolution.
    from repro.kernels.native import NativeBackend

    return NativeBackend()


def _native_probe() -> "tuple[bool, Optional[str]]":
    from repro.kernels.native import native_availability

    return native_availability()


register_backend("reference", ReferenceBackend)
register_backend("optimized", OptimizedBackend)
register_backend("native", _native_factory, availability=_native_probe)
# No availability probe: auto degrades to the optimized path when the
# native half is unusable, so it is usable everywhere.
register_backend("auto", AutoBackend)


def available_backends(*, usable_only: bool = False) -> list[str]:
    """Registered backend names.

    ``usable_only=True`` drops backends whose availability probe fails
    on this host (e.g. ``"native"`` without a C compiler) — see
    :func:`backend_availability` for the reasons.
    """
    names = sorted(_FACTORIES)
    if usable_only:
        names = [n for n in names if backend_availability().get(n) is None]
    return names


def backend_availability(name: Optional[str] = None) -> Dict[str, Optional[str]]:
    """Availability of registered backends on this host.

    Maps each name to ``None`` when the backend is usable, or to a
    human-readable reason when it is registered but unavailable (the
    same message resolving it would raise).  Always-available numpy
    backends map to ``None`` unconditionally.

    Pass ``name`` to probe a single backend — probing can be costly
    (the native probe attempts a real build on compiler-equipped
    hosts), so callers validating one selection should not pay for
    the whole table.  Unknown names yield an empty dict.
    """
    names = sorted(_FACTORIES) if name is None else [n for n in (name,) if n in _FACTORIES]
    out: Dict[str, Optional[str]] = {}
    for name in names:
        probe = _PROBES.get(name)
        if probe is None:
            out[name] = None
            continue
        ok, reason = probe()
        out[name] = None if ok else (reason or "unavailable on this host")
    return out


def _resolve(name_or_backend: Union[str, KernelBackend]) -> KernelBackend:
    if isinstance(name_or_backend, KernelBackend):
        return name_or_backend
    try:
        factory = _FACTORIES[name_or_backend]
    except KeyError:
        raise ValueError(
            f"unknown kernel backend {name_or_backend!r}; "
            f"available: {available_backends()}"
        ) from None
    return factory()


def get_backend() -> KernelBackend:
    """The active backend (initialized from ``REPRO_KERNEL_BACKEND``)."""
    global _ACTIVE
    if _ACTIVE is None:
        if ENV_VAR in os.environ:
            warnings.warn(
                f"selecting the kernel backend via the {ENV_VAR} environment "
                "variable is deprecated; pass "
                "repro.api.SolverConfig(backend=...) to an Engine instead",
                DeprecationWarning,
                stacklevel=2,
            )
        _ACTIVE = _resolve(os.environ.get(ENV_VAR, DEFAULT_BACKEND))
    return _ACTIVE


def _set_backend_impl(name_or_backend: Union[str, KernelBackend]) -> KernelBackend:
    """Install a backend globally; returns the previous one (no
    deprecation warning — the :class:`repro.api.Engine` activation path
    and :func:`use_backend` scoping route through here)."""
    global _ACTIVE
    previous = get_backend()
    _ACTIVE = _resolve(name_or_backend)
    return previous


def set_backend(name_or_backend: Union[str, KernelBackend]) -> KernelBackend:
    """Deprecated: install a backend globally; returns the previous one.

    Deprecated in favour of :class:`repro.api.SolverConfig` — construct
    ``SolverConfig(backend=...)`` and hand it to an
    :class:`repro.api.Engine`, which scopes the selection to its
    lifecycle instead of mutating process state forever.

    The active backend is **process-global, not thread-local**: do not
    switch backends while runs are stepping on other threads, or those
    runs would silently mix backends mid-trajectory.  (Safe with the
    built-in backends, which are bit-identical by contract, but not
    with a third-party backend that isn't.)  Pick the backend before
    fanning out concurrent work.
    """
    warnings.warn(
        "repro.kernels.set_backend is deprecated; select the backend via "
        "repro.api.SolverConfig(backend=...) and an Engine",
        DeprecationWarning,
        stacklevel=2,
    )
    return _set_backend_impl(name_or_backend)


@contextmanager
def use_backend(name_or_backend: Union[str, KernelBackend]):
    """Context manager: run a block under a specific backend.

    Process-global while active, like :func:`set_backend` — see its
    threading caveat.
    """
    previous = _set_backend_impl(name_or_backend)
    try:
        yield get_backend()
    finally:
        _set_backend_impl(previous)
