"""The one shared edge-parallel round kernel.

Every proportional-allocation variant executes the same per-round
pipeline over the left CSR side:

1. gather per-right-vertex integer exponents to L-CSR slots,
2. shifted-exponent softmax within each left neighbourhood,
3. (b-matching only) scale each row by the left vertex's unit budget,
4. scatter-add the per-edge values back to right-vertex allocations.

Algorithm 1/3 (:mod:`repro.core.proportional`), Algorithm 2's exact
instrumentation (:mod:`repro.core.sampled`) and the b-matching
dynamics (:mod:`repro.bmatching.proportional`) all call
:func:`proportional_round` — this module is the only place the round
kernel exists (DESIGN.md §6).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.kernels.backends import KernelBackend, get_backend
from repro.kernels.workspace import RoundWorkspace

__all__ = ["proportional_round"]


def proportional_round(
    workspace: RoundWorkspace,
    beta_exp: np.ndarray,
    scale: float,
    *,
    left_units: Optional[np.ndarray] = None,
    backend: Optional[KernelBackend] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """One evaluation of the proportional-split round.

    Returns ``(x, alloc)``: ``x`` is per-edge in canonical order
    (identical to L-CSR slot order by construction) and ``alloc`` is
    the resulting per-right-vertex load.  ``scale`` is ``log(1+ε)``;
    ``left_units`` optionally gives each left vertex a mass budget
    other than 1 (the b-matching generalization).  ``x`` is always a
    fresh array — callers may keep it across rounds.
    """
    be = backend or get_backend()
    ws = workspace
    e_slot = be.gather_as_float(beta_exp, ws.left_adj, row_buf=ws.beta_f64)
    # The gather above hands us a fresh per-slot array, so the softmax
    # may compute through it in place.
    x = be.segment_softmax_shifted(
        e_slot, ws.left.indptr, scale, layout=ws.left, mutate_input=True
    )
    if left_units is not None:
        units_slot = be.gather(np.asarray(left_units, dtype=np.float64), ws.edge_u)
        np.multiply(x, units_slot, out=x)
    alloc = be.scatter_add(ws.left_adj, weights=x, minlength=ws.n_right)
    return x, alloc
