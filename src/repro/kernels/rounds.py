"""The one shared edge-parallel round kernel.

Every proportional-allocation variant executes the same per-round
pipeline over the left CSR side:

1. gather per-right-vertex integer exponents to L-CSR slots,
2. shifted-exponent softmax within each left neighbourhood,
3. (b-matching only) scale each row by the left vertex's unit budget,
4. scatter-add the per-edge values back to right-vertex allocations.

Algorithm 1/3 (:mod:`repro.core.proportional`), Algorithm 2's exact
instrumentation (:mod:`repro.core.sampled`) and the b-matching
dynamics (:mod:`repro.bmatching.proportional`) all call
:func:`proportional_round` — this module is the only place the round
kernel exists (DESIGN.md §6).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.kernels.backends import KernelBackend, get_backend
from repro.kernels.workspace import RoundWorkspace

__all__ = ["proportional_round"]


def proportional_round(
    workspace: RoundWorkspace,
    beta_exp: np.ndarray,
    scale: float,
    *,
    left_units: Optional[np.ndarray] = None,
    backend: Optional[KernelBackend] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """One evaluation of the proportional-split round.

    Returns ``(x, alloc)``: ``x`` is per-edge in canonical order
    (identical to L-CSR slot order by construction) and ``alloc`` is
    the resulting per-right-vertex load.  ``scale`` is ``log(1+ε)``;
    ``left_units`` optionally gives each left vertex a mass budget
    other than 1 (the b-matching generalization).  ``x`` is always a
    fresh array — callers may keep it across rounds.

    Dispatches to the backend's ``proportional_round`` hook: the numpy
    backends compose the four segment primitives, while the native
    backend executes one fused C pass over the CSR arrays
    (DESIGN.md §11).
    """
    be = backend or get_backend()
    return be.proportional_round(workspace, beta_exp, scale, left_units=left_units)
