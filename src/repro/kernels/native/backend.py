"""The ``"native"`` kernel backend: fused C primitives via ctypes.

Where the numpy backends execute the round as four full-array passes
(gather → shifted softmax → segment reduce → scatter, each with its
own temporaries), this backend hands the raw CSR arrays of the cached
:class:`~repro.kernels.RoundWorkspace` to a single C function that
walks every left row once — per-slot state lives in registers instead
of m-sized arrays (DESIGN.md §11).

Parity tiers (asserted by ``tests/test_kernel_backends.py``):

* **bit-identical** — ``scatter_add`` (element-order left fold, the
  same fold ``np.bincount`` performs), ``segment_max``
  (order-independent), and every exponential in the fused round
  (weights are looked up from a Python-precomputed ``np.exp`` table
  keyed by the integer shift, so they are *exactly* the numpy values);
* **tolerance** — row *sums* (``segment_sum``, softmax denominators):
  numpy's ``reduceat`` accumulates with SIMD/pairwise partial sums
  while the C loops fold sequentially, so sums agree to a few ulps
  and trajectories to tolerance (in practice the integer β trajectory
  is unchanged, which the parity suite asserts on fixed seeds).

Instantiating the backend triggers the one-time compile+load
(:mod:`repro.kernels.native.build`); hosts without a C compiler get
an actionable :class:`~repro.kernels.native.build.KernelBuildError`
at *resolve* time, never at import time.
"""

from __future__ import annotations

import ctypes
from typing import Optional

import numpy as np

from repro.kernels.backends import OptimizedBackend
from repro.kernels.native.build import load_native_library
from repro.kernels.workspace import RoundWorkspace

__all__ = ["NativeBackend"]

_P_F64 = ctypes.POINTER(ctypes.c_double)
_P_I64 = ctypes.POINTER(ctypes.c_int64)


def _f64(arr: np.ndarray):
    return arr.ctypes.data_as(_P_F64)


def _i64(arr: np.ndarray):
    return arr.ctypes.data_as(_P_I64)


class NativeBackend(OptimizedBackend):
    """Fused one-pass C kernels over CSR arrays, loaded via ctypes.

    Subclasses the optimized backend so any primitive without a native
    implementation (``expand_rows``, ``gather``, non-float64 inputs)
    keeps the cached-invariant numpy path — the backend is always a
    strict superset, never a behavioral fork.
    """

    name = "native"

    def __init__(self) -> None:
        self._lib = load_native_library()
        # Per-scale exp lookup tables: scale -> (table, complete).
        # table[s] == np.exp(-s * scale) exactly; ``complete`` means the
        # table already reaches the underflow-to-zero tail, so any
        # larger shift is exactly 0.0 (what the C kernel returns past
        # the end of the table).
        self._exp_tables: dict[float, tuple[np.ndarray, bool]] = {}

    # -- exp-table management ------------------------------------------
    def _exp_table(self, scale: float, max_shift: int) -> np.ndarray:
        cached = self._exp_tables.get(scale)
        if cached is not None:
            table, complete = cached
            if complete or table.shape[0] > max_shift:
                return table
            grow_to = max(max_shift + 1, 2 * table.shape[0])
        else:
            grow_to = max(max_shift + 1, 1024)
        table = np.exp(-np.arange(grow_to, dtype=np.float64) * scale)
        zeros = np.nonzero(table == 0.0)[0]
        complete = zeros.size > 0
        if complete:
            # exp is monotone: once a shift underflows to 0.0 every
            # larger one does too, so the table may stop there.
            table = np.ascontiguousarray(table[: int(zeros[0]) + 1])
        table.setflags(write=False)
        self._exp_tables[scale] = (table, complete)
        return table

    # -- the fused round ------------------------------------------------
    def proportional_round(
        self,
        workspace: RoundWorkspace,
        beta_exp: np.ndarray,
        scale: float,
        *,
        left_units: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        ws = workspace
        x = np.empty(ws.n_edges, dtype=np.float64)
        alloc = np.zeros(ws.n_right, dtype=np.float64)
        if ws.n_edges == 0 or ws.n_left == 0:
            return x, alloc
        beta = np.ascontiguousarray(beta_exp, dtype=np.int64)
        indptr = np.ascontiguousarray(ws.left.indptr, dtype=np.int64)
        adj = np.ascontiguousarray(ws.left_adj, dtype=np.int64)
        # Shifts are bounded by the global exponent range (a superset
        # of every within-row range) — an O(n) scan, not O(m).
        max_shift = int(beta.max() - beta.min())
        table = self._exp_table(float(scale), max_shift)
        units = None
        if left_units is not None:
            units = np.ascontiguousarray(left_units, dtype=np.float64)
        self._lib.repro_proportional_round(
            _i64(beta),
            _i64(adj),
            _i64(indptr),
            ctypes.c_int64(ws.n_left),
            _f64(table),
            ctypes.c_int64(table.shape[0]),
            _f64(units) if units is not None else None,
            _f64(x),
            _f64(alloc),
        )
        return x, alloc

    # -- segment primitives ---------------------------------------------
    def segment_sum(self, per_slot, indptr, *, layout=None):
        per_slot = np.asarray(per_slot)
        if per_slot.dtype != np.float64:
            return super().segment_sum(per_slot, indptr, layout=layout)
        n_rows = int(indptr.shape[0] - 1)
        out = np.zeros(n_rows, dtype=np.float64)
        if per_slot.shape[0] == 0 or n_rows <= 0:
            return out
        self._lib.repro_segment_sum(
            _f64(np.ascontiguousarray(per_slot)),
            _i64(np.ascontiguousarray(indptr, dtype=np.int64)),
            ctypes.c_int64(n_rows),
            _f64(out),
        )
        return out

    def segment_max(self, per_slot, indptr, empty, *, layout=None):
        per_slot = np.asarray(per_slot)
        if per_slot.dtype != np.float64:
            return super().segment_max(per_slot, indptr, empty, layout=layout)
        n_rows = int(indptr.shape[0] - 1)
        out = np.empty(n_rows, dtype=np.float64)
        if n_rows <= 0:
            return out
        if per_slot.shape[0] == 0:
            out.fill(empty)
            return out
        self._lib.repro_segment_max(
            _f64(np.ascontiguousarray(per_slot)),
            _i64(np.ascontiguousarray(indptr, dtype=np.int64)),
            ctypes.c_int64(n_rows),
            ctypes.c_double(empty),
            _f64(out),
        )
        return out

    def segment_softmax_shifted(
        self, exp_slots, indptr, scale, *, layout=None, mutate_input=False
    ):
        # One fused pass (max + exp + sum + normalize per row) instead
        # of the numpy backends' four.  Always computes through a fresh
        # float64 copy, so the caller's array survives either way.
        e = np.asarray(exp_slots)
        out = e.astype(np.float64)  # astype always copies here
        n_rows = int(indptr.shape[0] - 1)
        if out.shape[0] == 0 or n_rows <= 0:
            return out
        self._lib.repro_segment_softmax_shifted(
            _f64(out),
            _i64(np.ascontiguousarray(indptr, dtype=np.int64)),
            ctypes.c_int64(n_rows),
            ctypes.c_double(scale),
            _f64(out),
        )
        return out

    def scatter_add(self, index, *, weights=None, minlength=0):
        if weights is None:
            # Pure counting: np.bincount is already a single C pass.
            return super().scatter_add(index, minlength=minlength)
        index = np.ascontiguousarray(index, dtype=np.int64)
        weights = np.ascontiguousarray(weights, dtype=np.float64)
        if index.shape[0] == 0:
            return np.zeros(minlength, dtype=np.float64)
        lo = int(index.min())
        if lo < 0:
            # Match np.bincount's error on negative bins.
            return super().scatter_add(index, weights=weights, minlength=minlength)
        n_bins = max(int(minlength), int(index.max()) + 1)
        out = np.zeros(n_bins, dtype=np.float64)
        self._lib.repro_scatter_add(
            _i64(index),
            _f64(weights),
            ctypes.c_int64(index.shape[0]),
            _f64(out),
        )
        return out
