/* Fused one-pass round-kernel primitives over raw CSR arrays.
 *
 * Compiled on demand by repro.kernels.native.build with the system C
 * compiler (-O3 -fPIC -shared) and loaded via ctypes — zero
 * dependencies beyond libc/libm.  Every function walks the CSR rows
 * exactly once; per-slot temporaries live in registers/L1 instead of
 * full-size numpy arrays (DESIGN.md §11).
 *
 * Accumulation-order contract (the two parity tiers, DESIGN.md §11):
 *   - scatter_add accumulates in element order, matching np.bincount's
 *     strict sequential left fold — bit-identical to the numpy
 *     backends.
 *   - segment maxima are order-independent — bit-identical.
 *   - segment *sums* (segment_sum, the softmax denominators) are
 *     strict sequential left folds per row; numpy's reduceat uses
 *     SIMD/pairwise partial sums, so these agree only to a few ulps —
 *     the parity suite's tolerance tier.
 *
 * exp() never appears below for the round kernel itself: the shifted
 * exponents are integers, so Python precomputes exp_table[i] =
 * np.exp(-i * scale) once per scale and the kernel looks weights up by
 * integer shift — exactly the values the numpy backends compute
 * (the PR-2 columnar-substrate idiom).  Shifts past the table have
 * underflowed to exactly 0.0.
 */

#include <math.h>
#include <stddef.h>
#include <stdint.h>

/* One fused proportional round (gather → shifted softmax → segment
 * reduce → scatter) over the left CSR side.
 *
 *   beta_exp   int64[n_right]   per-right-vertex integer exponents
 *   left_adj   int64[m]         L-CSR slot -> right vertex
 *   indptr     int64[n_left+1]  left CSR row pointers
 *   exp_table  f64[table_len]   exp_table[s] == np.exp(-s * scale)
 *   left_units f64[n_left]|NULL optional per-left-vertex mass budgets
 *   x          f64[m]           out: normalized per-slot weights
 *   alloc      f64[n_right]     out: per-right-vertex load (pre-zeroed)
 */
void repro_proportional_round(
    const int64_t *beta_exp,
    const int64_t *left_adj,
    const int64_t *indptr,
    int64_t n_left,
    const double *exp_table,
    int64_t table_len,
    const double *left_units,
    double *x,
    double *alloc)
{
    for (int64_t u = 0; u < n_left; ++u) {
        const int64_t start = indptr[u];
        const int64_t end = indptr[u + 1];
        if (start >= end)
            continue;
        int64_t row_max = beta_exp[left_adj[start]];
        for (int64_t i = start + 1; i < end; ++i) {
            const int64_t b = beta_exp[left_adj[i]];
            if (b > row_max)
                row_max = b;
        }
        double denom = 0.0;
        for (int64_t i = start; i < end; ++i) {
            const int64_t shift = row_max - beta_exp[left_adj[i]];
            const double w = (shift < table_len) ? exp_table[shift] : 0.0;
            x[i] = w;
            denom += w;
        }
        /* row_max slot contributes exp(0) = 1, so denom >= 1 here. */
        if (left_units != NULL) {
            const double unit = left_units[u];
            for (int64_t i = start; i < end; ++i) {
                /* numpy order: normalize first, then scale by units. */
                const double v = (x[i] / denom) * unit;
                x[i] = v;
                alloc[left_adj[i]] += v;
            }
        } else {
            for (int64_t i = start; i < end; ++i) {
                const double v = x[i] / denom;
                x[i] = v;
                alloc[left_adj[i]] += v;
            }
        }
    }
}

/* Row sums of a CSR-aligned float64 array; empty rows yield 0.
 * Strict sequential left fold per row (tolerance tier vs reduceat). */
void repro_segment_sum(
    const double *per_slot,
    const int64_t *indptr,
    int64_t n_rows,
    double *out)
{
    for (int64_t r = 0; r < n_rows; ++r) {
        double acc = 0.0;
        for (int64_t i = indptr[r]; i < indptr[r + 1]; ++i)
            acc += per_slot[i];
        out[r] = acc;
    }
}

/* Row maxima; empty rows yield `empty`.  NaNs propagate like
 * np.maximum.reduceat (any NaN in a row wins).  Bit-identical tier. */
void repro_segment_max(
    const double *per_slot,
    const int64_t *indptr,
    int64_t n_rows,
    double empty,
    double *out)
{
    for (int64_t r = 0; r < n_rows; ++r) {
        const int64_t start = indptr[r];
        const int64_t end = indptr[r + 1];
        if (start >= end) {
            out[r] = empty;
            continue;
        }
        double acc = per_slot[start];
        for (int64_t i = start + 1; i < end; ++i) {
            const double v = per_slot[i];
            if (v > acc || isnan(v))
                acc = v;
        }
        out[r] = acc;
    }
}

/* Fused shifted-exponent softmax over float64 per-slot values:
 * one pass per row computes the max, the exp'd shifted weights and
 * their sum, then normalizes in place.  Uses libm exp(), and row sums
 * are sequential — tolerance tier vs the numpy backends. */
void repro_segment_softmax_shifted(
    const double *per_slot,
    const int64_t *indptr,
    int64_t n_rows,
    double scale,
    double *out)
{
    for (int64_t r = 0; r < n_rows; ++r) {
        const int64_t start = indptr[r];
        const int64_t end = indptr[r + 1];
        if (start >= end)
            continue;
        double row_max = per_slot[start];
        for (int64_t i = start + 1; i < end; ++i) {
            const double v = per_slot[i];
            if (v > row_max)
                row_max = v;
        }
        double denom = 0.0;
        for (int64_t i = start; i < end; ++i) {
            const double w = exp((per_slot[i] - row_max) * scale);
            out[i] = w;
            denom += w;
        }
        for (int64_t i = start; i < end; ++i)
            out[i] /= denom;
    }
}

/* Weighted scatter-add into pre-zeroed bins, accumulating in element
 * order — the same strict left fold np.bincount performs, so this is
 * bit-identical to the numpy backends. */
void repro_scatter_add(
    const int64_t *index,
    const double *weights,
    int64_t n,
    double *out)
{
    for (int64_t i = 0; i < n; ++i)
        out[index[i]] += weights[i];
}
