"""Native (C, ctypes) kernel backend — the registry's third backend.

The public surface:

* :class:`NativeBackend` — the backend class (instantiating it builds
  and loads the C library; registered as ``"native"`` in
  :mod:`repro.kernels.backends`);
* :func:`native_available` / :func:`native_availability` — host
  capability probes (the pytest skip-marker and
  ``backend_availability()`` route through these);
* :func:`build_native_library` — force the compile (the CI build
  step);
* :class:`KernelBuildError` — the actionable resolve-time error on
  hosts without a working C toolchain.

Importing this package never compiles anything (DESIGN.md §11).
"""

from repro.kernels.native.build import (
    KernelBuildError,
    build_native_library,
    native_availability,
    native_available,
)
from repro.kernels.native.backend import NativeBackend

__all__ = [
    "NativeBackend",
    "KernelBuildError",
    "build_native_library",
    "native_availability",
    "native_available",
]
