"""On-demand compilation and loading of the native round kernel.

The native backend ships one small C source (``kernel.c``) and builds
it at first use with the system C compiler — no numba, no Cython, no
network, no new dependencies.  The compiled shared object is cached
under a build directory keyed by the SHA-256 of the source *and* the
exact compile command, so source edits, compiler switches and flag
changes each get a fresh artifact while repeated runs (and every
process on the host) reuse one ``.so``.

Degradation contract (DESIGN.md §11): importing this module never
compiles anything and never raises.  :func:`native_availability`
answers "could the backend work here?" with a reason when it cannot
(no compiler on PATH, or the probe compile failed), and
:func:`load_native_library` raises :class:`KernelBuildError` with that
actionable reason — callers resolving ``backend="native"`` surface it
instead of crashing import.

Environment knobs:

* ``REPRO_NATIVE_CC`` — compiler executable (default: ``$CC``, else
  the first of ``cc``/``gcc``/``clang`` on PATH).
* ``REPRO_NATIVE_CACHE`` — build directory (default:
  ``~/.cache/repro/native``, falling back to a per-user temp dir when
  the home cache is not writable).
"""

from __future__ import annotations

import ctypes
import getpass
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Optional

__all__ = [
    "KernelBuildError",
    "compiler_path",
    "native_availability",
    "native_available",
    "load_native_library",
    "build_native_library",
]

SOURCE_PATH = Path(__file__).resolve().parent / "kernel.c"
CFLAGS = ("-O3", "-fPIC", "-shared")

_CACHE_ENV = "REPRO_NATIVE_CACHE"
_CC_ENV = "REPRO_NATIVE_CC"

# Memoized state: (lib, None) after a successful load, (None, reason)
# after a failed probe/compile so repeated resolution attempts do not
# re-run the compiler just to fail again.
_LIB: Optional[ctypes.CDLL] = None
_FAILURE: Optional[str] = None


class KernelBuildError(RuntimeError):
    """The native kernel could not be built or loaded on this host."""


def compiler_path() -> Optional[str]:
    """Absolute path of the C compiler to use, or ``None`` when no
    compiler is on PATH (``REPRO_NATIVE_CC`` > ``CC`` > cc/gcc/clang)."""
    for candidate in (os.environ.get(_CC_ENV), os.environ.get("CC")):
        if candidate:
            return shutil.which(candidate)
    for name in ("cc", "gcc", "clang"):
        found = shutil.which(name)
        if found:
            return found
    return None


def _cache_dir() -> Path:
    override = os.environ.get(_CACHE_ENV)
    if override:
        return Path(override)
    try:
        base = Path.home() / ".cache"
    except RuntimeError:  # pragma: no cover - no resolvable home
        base = None
    if base is not None:
        path = base / "repro" / "native"
        try:
            path.mkdir(parents=True, exist_ok=True)
            return path
        except OSError:  # pragma: no cover - read-only home
            pass
    try:
        user = getpass.getuser()
    except Exception:  # pragma: no cover - no passwd entry
        user = str(os.getuid()) if hasattr(os, "getuid") else "user"
    return Path(tempfile.gettempdir()) / f"repro-native-{user}"


def _build_command(cc: str, out: Path) -> list[str]:
    return [cc, *CFLAGS, "-o", str(out), str(SOURCE_PATH), "-lm"]


def _artifact_path(cc: str) -> Path:
    """Cache key: source bytes + the exact command that would build it."""
    digest = hashlib.sha256()
    digest.update(SOURCE_PATH.read_bytes())
    digest.update("\0".join(_build_command(cc, Path("SO"))).encode())
    return _cache_dir() / f"libreprokernel-{digest.hexdigest()[:16]}.so"


def build_native_library(force: bool = False) -> Path:
    """Compile ``kernel.c`` (if not already cached) and return the
    ``.so`` path.  Raises :class:`KernelBuildError` with an actionable
    message when no compiler exists or compilation fails."""
    cc = compiler_path()
    if cc is None:
        raise KernelBuildError(
            "the native kernel backend needs a C compiler (cc/gcc/clang) "
            "on PATH and none was found — install one, point "
            f"{_CC_ENV} at one, or select backend='optimized'"
        )
    artifact = _artifact_path(cc)
    if artifact.exists() and not force:
        return artifact
    artifact.parent.mkdir(parents=True, exist_ok=True)
    # Compile to a unique temp name, then atomically rename: concurrent
    # processes racing on a cold cache each build their own temp and
    # the last rename wins with identical bytes.
    tmp = artifact.with_suffix(f".tmp{os.getpid()}.so")
    cmd = _build_command(cc, tmp)
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True, timeout=120)
    except (OSError, subprocess.TimeoutExpired) as exc:
        raise KernelBuildError(
            f"failed to run the C compiler {cc!r}: {exc}"
        ) from exc
    if proc.returncode != 0:
        tmp.unlink(missing_ok=True)
        raise KernelBuildError(
            "compiling the native kernel failed "
            f"({' '.join(cmd)}):\n{proc.stderr.strip()}"
        )
    os.replace(tmp, artifact)
    return artifact


def _declare(lib: ctypes.CDLL) -> ctypes.CDLL:
    i64 = ctypes.c_int64
    f64 = ctypes.c_double
    p_i64 = ctypes.POINTER(ctypes.c_int64)
    p_f64 = ctypes.POINTER(ctypes.c_double)
    lib.repro_proportional_round.restype = None
    lib.repro_proportional_round.argtypes = [
        p_i64, p_i64, p_i64, i64, p_f64, i64, p_f64, p_f64, p_f64,
    ]
    lib.repro_segment_sum.restype = None
    lib.repro_segment_sum.argtypes = [p_f64, p_i64, i64, p_f64]
    lib.repro_segment_max.restype = None
    lib.repro_segment_max.argtypes = [p_f64, p_i64, i64, f64, p_f64]
    lib.repro_segment_softmax_shifted.restype = None
    lib.repro_segment_softmax_shifted.argtypes = [p_f64, p_i64, i64, f64, p_f64]
    lib.repro_scatter_add.restype = None
    lib.repro_scatter_add.argtypes = [p_i64, p_f64, i64, p_f64]
    return lib


def load_native_library() -> ctypes.CDLL:
    """The loaded (building if needed) native kernel library.

    Memoized per process; a failed build is memoized too, so repeated
    resolution attempts re-raise the recorded reason instead of
    re-invoking the compiler."""
    global _LIB, _FAILURE
    if _LIB is not None:
        return _LIB
    if _FAILURE is not None:
        raise KernelBuildError(_FAILURE)
    try:
        artifact = build_native_library()
        _LIB = _declare(ctypes.CDLL(str(artifact)))
    except KernelBuildError as exc:
        _FAILURE = str(exc)
        raise
    except OSError as exc:  # dlopen failure on a stale/foreign artifact
        _FAILURE = f"failed to load the compiled native kernel: {exc}"
        raise KernelBuildError(_FAILURE) from exc
    return _LIB


def native_availability() -> tuple[bool, Optional[str]]:
    """``(available, reason)`` for this host, without raising.

    Cheap when a compiler is missing (a PATH probe); otherwise performs
    (or reuses) the real build so the answer reflects reality rather
    than optimism.  The reason string is exactly what resolving
    ``backend="native"`` would raise.
    """
    if _LIB is not None:
        return True, None
    if _FAILURE is None and compiler_path() is None:
        # Probe-only fast path: report without memoizing, so a compiler
        # installed later in the process lifetime is picked up.
        return False, (
            "no C compiler (cc/gcc/clang) found on PATH; install one or "
            f"set {_CC_ENV}"
        )
    try:
        load_native_library()
    except KernelBuildError as exc:
        return False, str(exc)
    return True, None


def native_available() -> bool:
    """Convenience predicate for test skip-markers and benchmarks."""
    return native_availability()[0]
