"""Unified kernel layer for the edge-parallel round primitives.

Every allocation algorithm in this repository (Algorithm 1/3, the
sampled Algorithm 2, the b-matching extension) spends its inner loop
in the same four segment primitives over a CSR side:

* ``segment_sum``  — row sums of a CSR-aligned per-slot array,
* ``segment_max``  — row maxima (with an explicit empty-row fill),
* ``segment_softmax_shifted`` — the shifted-exponent softmax that
  turns integer β exponents into normalized per-slot weights without
  overflow at any exponent magnitude (DESIGN.md §5/§6),
* ``scatter_add``  — the bincount scatter back to vertices.

This package isolates those primitives behind a backend registry
(:func:`get_backend` / :func:`set_backend`, selectable via the
``REPRO_KERNEL_BACKEND`` environment variable) with two built-in
implementations:

* ``"reference"`` — plain NumPy, operation-for-operation identical to
  the historical per-module implementations (per-round ``np.repeat``
  expansion, fresh temporaries);
* ``"optimized"`` — the default: identical floating-point operations
  in the identical order, but driven off cached per-graph invariants
  (slot-owner gather indices instead of ``np.repeat``, cached
  ``reduceat`` offsets, preallocated per-edge scratch buffers held in
  a :class:`RoundWorkspace`);
* ``"native"`` — a C implementation (compiled on demand with the
  system compiler, loaded via ctypes) that fuses the whole round into
  one pass over the CSR arrays (:mod:`repro.kernels.native`,
  DESIGN.md §11).  Registered everywhere but *available* only on
  hosts with a C compiler — :func:`backend_availability` reports the
  reason when it is not.

The two numpy backends perform the same FP operations in the same
order, so their trajectories are bit-identical — the parity tests in
``tests/test_kernel_backends.py`` assert this exactly.  The native
backend is bit-identical for order-independent primitives and agrees
to a documented tolerance wherever fusion folds row sums sequentially
(DESIGN.md §11 parity tiers).

See DESIGN.md §6 and §11 for the architecture.
"""

from __future__ import annotations

from repro.kernels.backends import (
    AutoBackend,
    KernelBackend,
    OptimizedBackend,
    ReferenceBackend,
    available_backends,
    backend_availability,
    get_backend,
    register_backend,
    set_backend,
    use_backend,
)
from repro.kernels.rounds import proportional_round
from repro.kernels.workspace import (
    RoundWorkspace,
    SegmentLayout,
    attach_workspace,
    resolve_workspace,
    transplant_workspace,
    workspace_for,
)

__all__ = [
    "KernelBackend",
    "ReferenceBackend",
    "OptimizedBackend",
    "AutoBackend",
    "available_backends",
    "backend_availability",
    "get_backend",
    "set_backend",
    "use_backend",
    "register_backend",
    "SegmentLayout",
    "RoundWorkspace",
    "workspace_for",
    "resolve_workspace",
    "transplant_workspace",
    "attach_workspace",
    "proportional_round",
    "segment_sum",
    "segment_max",
    "segment_softmax_shifted",
    "expand_rows",
    "scatter_add",
]


# ----------------------------------------------------------------------
# Module-level dispatchers: the convenience surface most consumers use.
# Each resolves the active backend at call time so set_backend()/the
# env var affect all call sites uniformly.
# ----------------------------------------------------------------------
def segment_sum(per_slot, indptr, *, layout=None):
    """Row sums of a CSR-aligned array; empty rows yield 0."""
    return get_backend().segment_sum(per_slot, indptr, layout=layout)


def segment_max(per_slot, indptr, empty, *, layout=None):
    """Row maxima of a CSR-aligned array; empty rows yield ``empty``."""
    return get_backend().segment_max(per_slot, indptr, empty, layout=layout)


def segment_softmax_shifted(exp_slots, indptr, scale, *, layout=None):
    """Normalized per-slot weights ``exp((e - rowmax(e))·scale) / rowsum``."""
    return get_backend().segment_softmax_shifted(
        exp_slots, indptr, scale, layout=layout
    )


def expand_rows(per_row, indptr, *, layout=None):
    """Broadcast a per-row array to CSR slots (repeat / gather)."""
    return get_backend().expand_rows(per_row, indptr, layout=layout)


def scatter_add(index, *, weights=None, minlength=0):
    """Scatter-add ``weights`` (or 1s) into ``minlength`` bins."""
    return get_backend().scatter_add(index, weights=weights, minlength=minlength)
