"""Algorithm 1 as a per-vertex LOCAL program.

This is the message-level rendering of the proportional dynamics: each
Algorithm-1 round costs two LOCAL communication rounds,

* an **odd** engine round in which every right vertex's β (as an
  integer exponent) travels to its left neighbours, and
* an **even** engine round in which every left vertex returns the
  fractional value ``x_{u,v}`` it assigns to each neighbour, after
  which right vertices aggregate ``alloc_v`` and move β one ε-step.

Engine round 0 is the initial β broadcast, so τ Algorithm-1 rounds run
in exactly ``2τ + 1`` engine rounds — the constant-factor LOCAL cost
the paper's round statements absorb.

Purpose: executable reference semantics.  The integration tests drive
this program and the vectorized :class:`ProportionalRun` side by side
and require bit-identical β trajectories (both use the same integer
exponent representation, and x values agree to float tolerance).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.graphs.bipartite import BipartiteGraph
from repro.local.engine import LocalAlgorithm, LocalEngine, Message
from repro.utils.validation import check_fraction

__all__ = ["ProportionalVertexProgram", "run_local_proportional", "merged_neighbors"]


@dataclass
class _LeftState:
    x_by_neighbor: dict[int, float] = field(default_factory=dict)


@dataclass
class _RightState:
    beta_exp: int = 0
    alloc: float = 0.0
    capacity: int = 1


class ProportionalVertexProgram(LocalAlgorithm):
    """The two-half-round message protocol described in the module doc.

    Vertex ids follow the merged space: left vertex ``u`` is ``u``,
    right vertex ``v`` is ``n_left + v``.
    """

    def __init__(self, graph: BipartiteGraph, capacities: np.ndarray, epsilon: float):
        self.graph = graph
        self.capacities = capacities
        self.epsilon = check_fraction(epsilon, "epsilon")
        self.n_left = graph.n_left

    def setup(self, vertex: int, engine: LocalEngine) -> Any:
        if vertex < self.n_left:
            return _LeftState()
        v = vertex - self.n_left
        return _RightState(beta_exp=0, capacity=int(self.capacities[v]))

    def round(
        self,
        vertex: int,
        state: Any,
        inbox: Sequence[Message],
        round_index: int,
        engine: LocalEngine,
    ) -> Sequence[tuple[int, Any]]:
        is_left = vertex < self.n_left
        if round_index % 2 == 0:
            # Even half-round: right vertices first fold in the x values
            # delivered this round (line 3-4 of Algorithm 1), then
            # re-broadcast their (possibly updated) priority.
            if is_left:
                return []
            if round_index > 0:
                self._aggregate_right(state, inbox)
            return [(int(w), ("beta", state.beta_exp)) for w in engine.neighbors(vertex)]
        # Odd half-round: left vertices split their unit mass (line 2).
        if is_left:
            betas = {msg.src: msg.payload[1] for msg in inbox if msg.payload[0] == "beta"}
            if not betas:
                return []
            # Same max-shifted computation as the vectorized path, so
            # the two implementations agree bit-for-bit on decisions.
            max_exp = max(betas.values())
            weights = {
                w: math.exp((b - max_exp) * math.log1p(self.epsilon))
                for w, b in betas.items()
            }
            denom = sum(weights.values())
            state.x_by_neighbor = {w: wt / denom for w, wt in weights.items()}
            return [(w, ("x", xv)) for w, xv in state.x_by_neighbor.items()]
        # Right vertices are silent in odd half-rounds.
        return []

    def _aggregate_right(self, state: _RightState, inbox: Sequence[Message]) -> None:
        """Lines 3-4 of Algorithm 1 at one right vertex."""
        alloc = 0.0
        for msg in inbox:
            kind, value = msg.payload
            if kind == "x":
                alloc += value
        state.alloc = alloc
        cap = float(state.capacity)
        if alloc <= cap / (1.0 + self.epsilon):
            state.beta_exp += 1
        elif alloc >= cap * (1.0 + self.epsilon):
            state.beta_exp -= 1


def merged_neighbors(graph: BipartiteGraph):
    """Neighbour function over the merged vertex space ``L ⊎ R``."""

    def neighbors(vertex: int) -> np.ndarray:
        if vertex < graph.n_left:
            return graph.left_neighbors(vertex) + graph.n_left
        return graph.right_neighbors(vertex - graph.n_left)

    return neighbors


def run_local_proportional(
    graph: BipartiteGraph,
    capacities: np.ndarray,
    epsilon: float,
    tau: int,
) -> tuple[np.ndarray, np.ndarray, "LocalEngine"]:
    """Run τ Algorithm-1 rounds through the message-passing engine.

    Returns ``(beta_exp, alloc, engine)`` where the arrays mirror the
    vectorized :class:`ProportionalRun` state after ``tau`` rounds.
    """
    if tau < 1:
        raise ValueError("tau must be >= 1")
    program = ProportionalVertexProgram(graph, capacities, epsilon)
    engine = LocalEngine(graph.n_vertices, merged_neighbors(graph))
    engine.attach(program)
    # Engine rounds: 0 (broadcast), then τ pairs of (x, aggregate+broadcast).
    engine.run(2 * tau + 1)
    beta_exp = np.asarray(
        [engine.state_of(graph.n_left + v).beta_exp for v in range(graph.n_right)],
        dtype=np.int64,
    )
    alloc = np.asarray(
        [engine.state_of(graph.n_left + v).alloc for v in range(graph.n_right)],
        dtype=np.float64,
    )
    return beta_exp, alloc, engine
