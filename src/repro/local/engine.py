"""Synchronous LOCAL-model simulator.

The LOCAL model (§2.2): processors sit on the graph's vertices and, in
synchronous rounds, (1) receive the messages sent to them in the
previous round, (2) compute arbitrarily, (3) send one message to any
subset of their neighbours.  This engine reproduces those semantics
exactly — including delayed delivery — and *enforces* the model's only
communication constraint: messages travel along edges.

The design mirrors the mpi4py send/recv idiom from the domain guides:
per-vertex outboxes staged during a round, a barrier, then delivery.
It is a reference implementation for validating the vectorized solvers
(integration tests run both and compare trajectories), not a
performance path; accounting counters make round/message costs
inspectable.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

__all__ = ["Message", "LocalAlgorithm", "LocalEngine", "EngineStats"]


@dataclass(frozen=True)
class Message:
    """A payload in flight from ``src`` to ``dst`` (both vertex ids)."""

    src: int
    dst: int
    payload: Any


@dataclass
class EngineStats:
    """Communication accounting across an execution."""

    rounds: int = 0
    messages: int = 0
    max_messages_per_round: int = 0
    max_inbox: int = 0              # peak per-vertex fan-in over all rounds

    def record_round(self, n_messages: int, max_inbox: int = 0) -> None:
        self.rounds += 1
        self.messages += n_messages
        self.max_messages_per_round = max(self.max_messages_per_round, n_messages)
        self.max_inbox = max(self.max_inbox, max_inbox)


class LocalAlgorithm(ABC):
    """A vertex program.

    ``setup`` initializes per-vertex state; ``round`` is invoked once
    per vertex per engine round with the messages delivered this round
    and returns ``(destination, payload)`` pairs to send.  Destinations
    must be neighbours — the engine raises otherwise, because breaking
    that rule silently would invalidate every round-count measurement.
    """

    @abstractmethod
    def setup(self, vertex: int, engine: "LocalEngine") -> Any:
        """Return the initial state of ``vertex``."""

    @abstractmethod
    def round(
        self,
        vertex: int,
        state: Any,
        inbox: Sequence[Message],
        round_index: int,
        engine: "LocalEngine",
    ) -> Sequence[tuple[int, Any]]:
        """Process one round at ``vertex``; return outgoing messages."""


class LocalEngine:
    """Executes a :class:`LocalAlgorithm` over an undirected adjacency.

    ``neighbors`` maps a vertex id to an integer array of neighbour
    ids.  States are owned by the engine and exposed via ``state_of``.
    """

    def __init__(self, n_vertices: int, neighbors: Callable[[int], np.ndarray]):
        if n_vertices < 0:
            raise ValueError("n_vertices must be non-negative")
        self.n_vertices = n_vertices
        self._neighbors = neighbors
        self._neighbor_sets: list[set[int]] = [
            set(int(w) for w in neighbors(v)) for v in range(n_vertices)
        ]
        self.states: list[Any] = [None] * n_vertices
        self.stats = EngineStats()
        self._pending: list[list[Message]] = [[] for _ in range(n_vertices)]
        self._algorithm: LocalAlgorithm | None = None

    # ------------------------------------------------------------------
    def attach(self, algorithm: LocalAlgorithm) -> None:
        """Bind an algorithm and run its per-vertex setup."""
        self._algorithm = algorithm
        for v in range(self.n_vertices):
            self.states[v] = algorithm.setup(v, self)
        self._pending = [[] for _ in range(self.n_vertices)]
        self.stats = EngineStats()

    def neighbors(self, vertex: int) -> np.ndarray:
        return self._neighbors(vertex)

    def state_of(self, vertex: int) -> Any:
        return self.states[vertex]

    # ------------------------------------------------------------------
    def run_round(self) -> int:
        """Execute one synchronous round; returns messages delivered."""
        if self._algorithm is None:
            raise RuntimeError("attach() an algorithm before running rounds")
        inboxes = self._pending
        self._pending = [[] for _ in range(self.n_vertices)]
        delivered = sum(len(box) for box in inboxes)
        staged: list[Message] = []
        round_index = self.stats.rounds
        for v in range(self.n_vertices):
            out = self._algorithm.round(
                v, self.states[v], inboxes[v], round_index, self
            )
            for dst, payload in out:
                if dst not in self._neighbor_sets[v]:
                    raise ValueError(
                        f"LOCAL violation: vertex {v} tried to message non-neighbour {dst}"
                    )
                staged.append(Message(src=v, dst=dst, payload=payload))
        # Barrier: deliver at the start of the next round.
        for msg in staged:
            self._pending[msg.dst].append(msg)
        # The freshly filled outboxes are the fan-in histogram.
        max_inbox = max((len(box) for box in self._pending), default=0)
        self.stats.record_round(len(staged), max_inbox)
        return delivered

    def run(self, rounds: int) -> EngineStats:
        """Execute ``rounds`` rounds; returns the accumulated stats."""
        if rounds < 0:
            raise ValueError("rounds must be non-negative")
        for _ in range(rounds):
            self.run_round()
        return self.stats
