"""LOCAL-model substrate: synchronous message-passing simulation.

:class:`LocalEngine` provides exact LOCAL semantics (delayed delivery,
edge-only communication, per-round accounting); the allocation vertex
program renders Algorithm 1 at message granularity as the reference
against which the vectorized solver is validated.
"""

from repro.local.engine import LocalAlgorithm, LocalEngine, EngineStats, Message
from repro.local.allocation_vertex import (
    ProportionalVertexProgram,
    run_local_proportional,
    merged_neighbors,
)

__all__ = [
    "LocalAlgorithm",
    "LocalEngine",
    "EngineStats",
    "Message",
    "ProportionalVertexProgram",
    "run_local_proportional",
    "merged_neighbors",
]
