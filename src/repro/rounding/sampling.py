"""§6 — randomized rounding from fractional to integral allocations.

The paper's procedure: sample each edge independently with probability
``x_e / 6``; call a vertex *heavy* if its sampled degree exceeds its
capacity (1 for left vertices, ``C_v`` for right) and drop **all**
sampled edges at heavy vertices.  §6 proves ``E[|M|] ≥ wt(M_f)/9``:
each sampled edge survives unless an endpoint is heavy, and Markov
(capacity > 1) / union (capacity = 1) bounds make each endpoint heavy
with probability ≤ 1/3.

For a whp guarantee the MPC algorithm runs ``O(log n)`` independent
copies in parallel and keeps the best — :func:`round_best_of`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.fractional import FractionalAllocation
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.capacities import validate_capacities
from repro.kernels import scatter_add
from repro.utils.rng import as_generator, spawn
from repro.utils.validation import check_fraction, check_positive_int

__all__ = [
    "RoundingOutcome",
    "round_once",
    "round_best_of",
    "default_copies",
    "expected_size_lower_bound",
]

# The paper's sampling damping: edge e is taken w.p. x_e / SAMPLING_DIVISOR.
SAMPLING_DIVISOR = 6.0
# E[|M|] ≥ wt(M_f) / EXPECTATION_FACTOR (§6's computation).
EXPECTATION_FACTOR = 9.0


@dataclass(frozen=True)
class RoundingOutcome:
    """One rounded allocation with its audit trail."""

    edge_mask: np.ndarray        # surviving edges (the allocation M)
    sampled_mask: np.ndarray     # the pre-drop sample
    heavy_left: np.ndarray       # left vertices that were heavy
    heavy_right: np.ndarray      # right vertices that were heavy

    @property
    def size(self) -> int:
        return int(self.edge_mask.sum())


def expected_size_lower_bound(fractional_weight: float) -> float:
    """§6: ``E[|M|] ≥ wt(M_f)/9``."""
    return fractional_weight / EXPECTATION_FACTOR


def default_copies(n: int, constant: float = 4.0) -> int:
    """``O(log n)`` parallel copies for the whp best-of selection."""
    n = check_positive_int(n, "n")
    return max(1, int(math.ceil(constant * math.log(max(2, n)))))


def round_once(
    graph: BipartiteGraph,
    capacities: np.ndarray,
    allocation: FractionalAllocation,
    *,
    seed=None,
) -> RoundingOutcome:
    """One run of the §6 procedure.

    The output is always a feasible allocation: after dropping edges at
    heavy vertices, every remaining vertex has sampled degree within
    its capacity by definition of heavy.
    """
    caps = validate_capacities(graph, capacities)
    x = allocation.x
    if x.shape != (graph.n_edges,):
        raise ValueError("allocation does not match the graph")
    rng = as_generator(seed)
    sampled = rng.random(graph.n_edges) < (x / SAMPLING_DIVISOR)

    left_deg = scatter_add(graph.edge_u[sampled], minlength=graph.n_left)
    right_deg = scatter_add(graph.edge_v[sampled], minlength=graph.n_right)
    heavy_left = left_deg > 1
    heavy_right = right_deg > caps

    keep = sampled & ~heavy_left[graph.edge_u] & ~heavy_right[graph.edge_v]
    return RoundingOutcome(
        edge_mask=keep,
        sampled_mask=sampled,
        heavy_left=heavy_left,
        heavy_right=heavy_right,
    )


def round_best_of(
    graph: BipartiteGraph,
    capacities: np.ndarray,
    allocation: FractionalAllocation,
    *,
    copies: int | None = None,
    seed=None,
) -> RoundingOutcome:
    """Best of ``copies`` independent roundings (the whp version).

    In MPC the copies run in parallel and selecting the maximum costs
    O(1) rounds; here they run sequentially over spawned streams.
    """
    if copies is None:
        copies = default_copies(graph.n_vertices)
    copies = check_positive_int(copies, "copies")
    best: RoundingOutcome | None = None
    for stream in spawn(seed, copies):
        outcome = round_once(graph, capacities, allocation, seed=stream)
        if best is None or outcome.size > best.size:
            best = outcome
    assert best is not None
    return best
