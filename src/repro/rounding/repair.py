"""Greedy repair / fill-in after randomized rounding (extension).

The §6 procedure throws away a lot of mass (the 1/9 factor is loose by
design), leaving residual capacity on both sides.  A maximality pass —
greedily adding any edge whose endpoints still have slack — never
violates feasibility and can only grow the allocation; it turns the
§6 output into a *maximal* allocation, which is a ½-approximation on
its own.  This is not part of the paper's analysis; E7b ablates how
much of the constant-factor gap it recovers in practice.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.capacities import validate_integral_allocation
from repro.utils.rng import as_generator

__all__ = ["greedy_fill"]


def greedy_fill(
    graph: BipartiteGraph,
    capacities: np.ndarray,
    edge_mask: np.ndarray,
    *,
    order: str = "random",
    seed=None,
) -> np.ndarray:
    """Extend ``edge_mask`` to a maximal allocation.

    Scans non-selected edges (random or canonical order) and adds each
    one that fits.  Returns a new mask; the input is not modified.
    """
    caps, mask, left_used, right_used = validate_integral_allocation(
        graph, capacities, edge_mask
    )
    mask = mask.copy()

    candidates = np.nonzero(~mask)[0]
    if order == "random":
        candidates = as_generator(seed).permutation(candidates)
    elif order != "canonical":
        raise ValueError(f"unknown order {order!r}")

    edge_u = graph.edge_u
    edge_v = graph.edge_v
    for e in candidates.tolist():
        u = edge_u[e]
        v = edge_v[e]
        if left_used[u] == 0 and right_used[v] < caps[v]:
            mask[e] = True
            left_used[u] = 1
            right_used[v] += 1
    return mask
