"""§6 rounding: fractional → integral allocations."""

from repro.rounding.sampling import (
    RoundingOutcome,
    round_once,
    round_best_of,
    default_copies,
    expected_size_lower_bound,
    SAMPLING_DIVISOR,
    EXPECTATION_FACTOR,
)
from repro.rounding.repair import greedy_fill

__all__ = [
    "RoundingOutcome",
    "round_once",
    "round_best_of",
    "default_copies",
    "expected_size_lower_bound",
    "SAMPLING_DIVISOR",
    "EXPECTATION_FACTOR",
    "greedy_fill",
]
