"""Durable-session allocation service: a JSONL-over-socket front end.

:class:`AllocationService` is the deployable shape of the serving
layer (DESIGN.md §14): an asyncio unix-socket server multiplexing
request streams onto resident :class:`~repro.serve.AllocationSession`
objects, with the durability discipline of
:mod:`repro.serve.snapshot` underneath —

* **admission control** — at most ``max_sessions`` residents; opening
  one more evicts the least-recently-used *idle* resident to a
  snapshot, and when every resident is busy the open is refused with
  a typed ``admission_rejected`` error on the wire (never an
  unbounded memory footprint, never a silent queue).
* **request coalescing** — identical ``(instance, request)`` pairs
  arriving while a matching solve is in flight share that solve's
  future: one execution, N responses, one seed position consumed.
* **seed cursor** — a request without an explicit seed gets the
  ``i``-th seed of a keyed :class:`~repro.utils.rng.RngFactory`
  stream, where ``i`` counts the instance's seedless solves.  The
  cursor is part of the snapshot, so derived seeds — and therefore
  results — survive a restart.
* **checkpointing** — periodic (``checkpoint_interval``), on every
  commit (``checkpoint_on_commit``, the bit-identical-recovery mode),
  on eviction, and on shutdown.  Snapshots land atomically
  (:class:`~repro.serve.snapshot.SnapshotStore`).
* **crash recovery** — on start the service rehydrates the newest
  valid snapshot per instance; restored exponents re-verify the
  λ-free certificate before the session is declared warm, so the
  first post-restore request warm-starts (measured in
  ``benchmarks/bench_service.py``).

Wire protocol: one JSON object per line, one response line per
request.  Operations: ``open`` (admit an instance, embedded as
:mod:`repro.graphs.io` JSON), ``solve`` (a
:class:`~repro.serve.SolveRequest` JSON object against a resident
hash), ``reroll`` (re-round the retained fractional solve), ``stats``,
``snapshot`` (force a checkpoint), ``shutdown``.  Errors are typed:
``{"ok": false, "error": {"type": ..., "message": ...}}`` with type
one of ``bad_request`` / ``unknown_instance`` /
``admission_rejected`` / ``internal``.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Optional, Union

from repro.graphs.instances import AllocationInstance
from repro.serve.session import AllocationSession, SolveRequest
from repro.serve.shm import instance_hash
from repro.serve.snapshot import (
    SnapshotStore,
    restore_session,
    snapshot_session,
)
from repro.utils.rng import RngFactory

__all__ = [
    "ServiceError",
    "AllocationService",
    "ServiceClient",
    "run_service",
]

ERROR_TYPES = ("bad_request", "unknown_instance", "admission_rejected", "internal")


class ServiceError(Exception):
    """A typed, wire-serializable service error."""

    def __init__(self, error_type: str, message: str):
        assert error_type in ERROR_TYPES
        super().__init__(message)
        self.error_type = error_type

    def as_response(self) -> dict[str, Any]:
        return {
            "ok": False,
            "error": {"type": self.error_type, "message": str(self)},
        }


@dataclass
class _Resident:
    """One admitted session plus its service-side bookkeeping."""

    session: AllocationSession
    hash: str
    seed_cursor: int = 0
    busy: int = 0            # in-flight solves (busy residents are not evictable)
    dirty: bool = False      # state newer than the last checkpoint
    last_used: int = 0       # LRU stamp (service-wide monotonic counter)
    restored_warm: bool = False


@dataclass
class ServiceCounters:
    """Service-wide counters, exported by the ``stats`` op."""

    solves: int = 0
    coalesced: int = 0
    opens: int = 0
    evictions: int = 0
    checkpoints: int = 0
    restores_warm: int = 0
    restores_cold: int = 0
    rejections: int = 0

    def as_dict(self) -> dict[str, int]:
        return {k: getattr(self, k) for k in (
            "solves", "coalesced", "opens", "evictions",
            "checkpoints", "restores_warm", "restores_cold", "rejections",
        )}


class AllocationService:
    """The durable-session allocation service (see module docstring).

    Construct, then either ``await service.start()`` inside a running
    loop (tests) or call :func:`run_service` (CLI).  ``session_kwargs``
    are the solver defaults for every resident session —
    :meth:`Engine.open_service <repro.api.Engine.open_service>` fills
    them from its :class:`~repro.api.SolverConfig`.
    """

    def __init__(
        self,
        store_dir: Union[str, Path],
        *,
        socket_path: Optional[Union[str, Path]] = None,
        max_sessions: int = 8,
        checkpoint_interval: Optional[float] = None,
        checkpoint_on_commit: bool = False,
        seed: int = 0,
        verify_restore: bool = True,
        rehydrate: bool = True,
        session_kwargs: Optional[Mapping[str, Any]] = None,
    ):
        if max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {max_sessions}")
        self.store = SnapshotStore(store_dir)
        self.socket_path = Path(
            socket_path if socket_path is not None
            else self.store.root / "service.sock"
        )
        self.max_sessions = int(max_sessions)
        self.checkpoint_interval = checkpoint_interval
        self.checkpoint_on_commit = bool(checkpoint_on_commit)
        self.seed = int(seed)
        self.verify_restore = bool(verify_restore)
        self.rehydrate = bool(rehydrate)
        self.session_kwargs = dict(session_kwargs or {})
        self.counters = ServiceCounters()
        self._residents: dict[str, _Resident] = {}
        self._inflight: dict[tuple[str, str], asyncio.Future] = {}
        self._rng = RngFactory(self.seed)
        self._clock = 0
        # One worker: solves on resident sessions are serialized, which
        # keeps the commit order (and therefore warm-start lineage and
        # snapshot sequence) deterministic under concurrent clients.
        self._pool = ThreadPoolExecutor(max_workers=1)
        self._server: Optional[asyncio.AbstractServer] = None
        self._checkpoint_task: Optional[asyncio.Task] = None
        self._stopping = asyncio.Event()

    # -- resident lifecycle ----------------------------------------------
    def _touch(self, resident: _Resident) -> None:
        self._clock += 1
        resident.last_used = self._clock

    def _derive_seed(self, resident: _Resident) -> int:
        """The ``seed_cursor``-th seed of this instance's keyed stream —
        a pure function of (service seed, instance hash, position), so
        it survives restarts and is independent of arrival order across
        instances."""
        return self._rng.integers(int(resident.hash[:15], 16), resident.seed_cursor)

    def _checkpoint(self, resident: _Resident) -> None:
        self.store.save(
            snapshot_session(resident.session, seed_cursor=resident.seed_cursor)
        )
        resident.dirty = False
        self.counters.checkpoints += 1

    def checkpoint_all(self) -> int:
        """Snapshot every dirty resident; returns how many were saved."""
        saved = 0
        for resident in self._residents.values():
            if resident.dirty:
                self._checkpoint(resident)
                saved += 1
        return saved

    def _evict_one(self) -> None:
        """Evict the least-recently-used idle resident to a snapshot."""
        idle = [r for r in self._residents.values() if r.busy == 0]
        if not idle:
            self.counters.rejections += 1
            raise ServiceError(
                "admission_rejected",
                f"all {len(self._residents)} resident sessions are busy "
                f"(max_sessions={self.max_sessions})",
            )
        victim = min(idle, key=lambda r: r.last_used)
        if victim.dirty:
            self._checkpoint(victim)
        del self._residents[victim.hash]
        self.counters.evictions += 1

    def _restore_resident(self, payload: Mapping[str, Any]) -> _Resident:
        restored = restore_session(
            payload,
            verify=self.verify_restore,
            kind=None,
            **self.session_kwargs,
        )
        if restored.warm:
            self.counters.restores_warm += 1
        else:
            self.counters.restores_cold += 1
        resident = _Resident(
            session=restored.session,
            hash=payload["instance_hash"],
            seed_cursor=restored.seed_cursor,
            restored_warm=restored.warm,
        )
        self._touch(resident)
        return resident

    def _admit(self, instance: AllocationInstance) -> tuple[_Resident, bool]:
        """Admit an instance; returns ``(resident, restored)``."""
        h = instance_hash(instance)
        resident = self._residents.get(h)
        if resident is not None:
            self._touch(resident)
            return resident, False
        if len(self._residents) >= self.max_sessions:
            self._evict_one()
        payload = self.store.latest(h)
        if payload is not None:
            resident = self._restore_resident(payload)
            self._residents[h] = resident
            return resident, True
        resident = _Resident(
            session=AllocationSession(instance, **self.session_kwargs), hash=h
        )
        self._touch(resident)
        self._residents[h] = resident
        return resident, False

    def _rehydrate_all(self) -> int:
        """Startup sweep: re-admit the newest valid snapshot of every
        instance in the store (up to ``max_sessions``, newest-first)."""
        restored = 0
        for h, payload in self.store.latest_all().items():
            if len(self._residents) >= self.max_sessions:
                break
            if h not in self._residents:
                self._residents[h] = self._restore_resident(payload)
                restored += 1
        return restored

    def _resident_or_raise(self, h: Any) -> _Resident:
        if not isinstance(h, str):
            raise ServiceError("bad_request", "instance_hash must be a string")
        resident = self._residents.get(h)
        if resident is None:
            # Lazy re-admission from the store: the client may know the
            # hash from a previous process lifetime.
            payload = self.store.latest(h)
            if payload is None:
                raise ServiceError(
                    "unknown_instance", f"no resident session or snapshot for {h[:16]}"
                )
            if len(self._residents) >= self.max_sessions:
                self._evict_one()
            resident = self._restore_resident(payload)
            self._residents[h] = resident
        self._touch(resident)
        return resident

    # -- operations ------------------------------------------------------
    async def _op_open(self, msg: Mapping[str, Any]) -> dict[str, Any]:
        from repro.graphs.io import instance_from_json

        obj = msg.get("instance")
        if not isinstance(obj, Mapping):
            raise ServiceError("bad_request", "open needs an embedded 'instance' object")
        try:
            instance = instance_from_json(json.dumps(obj))
        except (ValueError, KeyError, TypeError) as exc:
            raise ServiceError("bad_request", f"bad instance: {exc}") from exc
        resident, restored = self._admit(instance)
        self.counters.opens += 1
        return {
            "ok": True,
            "instance_hash": resident.hash,
            "restored": restored,
            "warm": resident.session.exponents_snapshot() is not None,
            "seed_cursor": resident.seed_cursor,
        }

    async def _op_solve(self, msg: Mapping[str, Any]) -> dict[str, Any]:
        from repro.api.report import AllocationReport

        resident = self._resident_or_raise(msg.get("instance_hash"))
        req_obj = msg.get("request") or {}
        if not isinstance(req_obj, Mapping):
            raise ServiceError("bad_request", "'request' must be a JSON object")
        try:
            request = SolveRequest.from_json(req_obj)
        except (ValueError, TypeError) as exc:
            raise ServiceError("bad_request", str(exc)) from exc

        key = (resident.hash, json.dumps(req_obj, sort_keys=True))
        pending = self._inflight.get(key)
        if pending is not None:
            # Coalesce: share the in-flight solve's response verbatim.
            self.counters.coalesced += 1
            response = dict(await asyncio.shield(pending))
            response["coalesced"] = True
            return response

        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        resident.busy += 1
        try:
            seed = request.seed
            solve_req = request
            if seed is None:
                seed = self._derive_seed(resident)
                resident.seed_cursor += 1
                solve_req = dataclasses.replace(request, seed=seed)
            result = await asyncio.get_running_loop().run_in_executor(
                self._pool, resident.session.solve, solve_req
            )
            resident.dirty = True
            self.counters.solves += 1
            if self.checkpoint_on_commit:
                self._checkpoint(resident)
            response = {
                "ok": True,
                "instance_hash": resident.hash,
                "seed_used": int(seed),
                "warm_start": bool(result.meta.get("warm_start")),
                "coalesced": False,
                "report": AllocationReport.from_pipeline(result).payload,
            }
            future.set_result(response)
            return response
        except BaseException as exc:
            if not future.done():
                future.set_exception(exc)
                # Coalesced awaiters observe the same failure; don't
                # let the unretrieved-exception warning fire too.
                future.exception()
            raise
        finally:
            resident.busy -= 1
            self._inflight.pop(key, None)

    async def _op_reroll(self, msg: Mapping[str, Any]) -> dict[str, Any]:
        from repro.api.report import AllocationReport

        resident = self._resident_or_raise(msg.get("instance_hash"))
        seed = msg.get("seed")
        resident.busy += 1
        try:
            result = await asyncio.get_running_loop().run_in_executor(
                self._pool, lambda: resident.session.reroll_rounding(seed=seed)
            )
        except RuntimeError as exc:
            raise ServiceError("bad_request", str(exc)) from exc
        finally:
            resident.busy -= 1
        resident.dirty = True
        return {
            "ok": True,
            "instance_hash": resident.hash,
            "report": AllocationReport.from_pipeline(result).payload,
        }

    async def _op_stats(self, msg: Mapping[str, Any]) -> dict[str, Any]:
        residents = {
            h: {
                "seed_cursor": r.seed_cursor,
                "busy": r.busy,
                "dirty": r.dirty,
                "warm": r.session.exponents_snapshot() is not None,
                "restored_warm": r.restored_warm,
                "session": r.session.stats.as_dict(),
            }
            for h, r in self._residents.items()
        }
        return {
            "ok": True,
            "counters": self.counters.as_dict(),
            "max_sessions": self.max_sessions,
            "residents": residents,
        }

    async def _op_snapshot(self, msg: Mapping[str, Any]) -> dict[str, Any]:
        h = msg.get("instance_hash")
        if h is not None:
            resident = self._resident_or_raise(h)
            self._checkpoint(resident)
            return {"ok": True, "checkpointed": 1}
        return {"ok": True, "checkpointed": self.checkpoint_all()}

    async def _op_shutdown(self, msg: Mapping[str, Any]) -> dict[str, Any]:
        self._stopping.set()
        return {"ok": True, "stopping": True}

    _OPS = {
        "open": _op_open,
        "solve": _op_solve,
        "reroll": _op_reroll,
        "stats": _op_stats,
        "snapshot": _op_snapshot,
        "shutdown": _op_shutdown,
    }

    async def handle_message(self, msg: Any) -> dict[str, Any]:
        """Dispatch one decoded request object to its operation."""
        try:
            if not isinstance(msg, Mapping):
                raise ServiceError("bad_request", "each line must be a JSON object")
            op = msg.get("op")
            handler = self._OPS.get(op) if isinstance(op, str) else None
            if handler is None:
                raise ServiceError(
                    "bad_request", f"unknown op {op!r}; known: {sorted(self._OPS)}"
                )
            return await handler(self, msg)
        except ServiceError as exc:
            return exc.as_response()
        except Exception as exc:  # pragma: no cover - defensive
            return ServiceError("internal", f"{type(exc).__name__}: {exc}").as_response()

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                text = line.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                try:
                    msg = json.loads(text)
                except json.JSONDecodeError as exc:
                    response = ServiceError(
                        "bad_request", f"invalid JSON: {exc}"
                    ).as_response()
                else:
                    response = await self.handle_message(msg)
                writer.write((json.dumps(response) + "\n").encode())
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            writer.close()

    async def _checkpoint_loop(self) -> None:
        assert self.checkpoint_interval is not None
        while True:
            await asyncio.sleep(self.checkpoint_interval)
            self.checkpoint_all()

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> "AllocationService":
        """Rehydrate from the store and start listening."""
        if self.rehydrate:
            self._rehydrate_all()
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        self.socket_path.unlink(missing_ok=True)
        # Default stream limit is 64 KiB per line; an embedded instance
        # JSON (the `open` op) is routinely larger.
        self._server = await asyncio.start_unix_server(
            self._handle_client, path=str(self.socket_path), limit=1 << 26
        )
        if self.checkpoint_interval is not None:
            self._checkpoint_task = asyncio.create_task(self._checkpoint_loop())
        return self

    async def stop(self) -> None:
        """Checkpoint every dirty resident, then stop serving."""
        if self._checkpoint_task is not None:
            self._checkpoint_task.cancel()
            self._checkpoint_task = None
        self.checkpoint_all()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.socket_path.unlink(missing_ok=True)
        self._pool.shutdown(wait=True)

    async def serve_until_shutdown(self) -> None:
        """``start()``, run until a ``shutdown`` op (or cancellation),
        then ``stop()`` — the CLI's main coroutine."""
        await self.start()
        try:
            await self._stopping.wait()
            # Let the shutdown response flush before the socket dies.
            await asyncio.sleep(0.05)
        finally:
            await self.stop()


def run_service(service: AllocationService, *, ready_line: bool = True) -> None:
    """Blocking entry point (the ``cli serve`` subcommand).

    Prints one JSON ready line — ``{"ready": true, "socket": ...}`` —
    once the socket is listening, so a supervisor (or the recovery
    test harness) knows when to connect.
    """

    async def _main() -> None:
        await service.start()
        if ready_line:
            print(
                json.dumps(
                    {
                        "ready": True,
                        "socket": str(service.socket_path),
                        "store": str(service.store.root),
                        "residents": len(service._residents),
                    }
                ),
                flush=True,
            )
        try:
            await service._stopping.wait()
            await asyncio.sleep(0.05)
        finally:
            await service.stop()

    asyncio.run(_main())


class ServiceClient:
    """Minimal synchronous JSONL client (tests, benchmarks, scripts)."""

    def __init__(self, socket_path: Union[str, Path], *, timeout: float = 120.0):
        import socket as _socket

        self._sock = _socket.socket(_socket.AF_UNIX, _socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        self._sock.connect(str(socket_path))
        self._buf = b""

    def call(self, msg: Mapping[str, Any]) -> dict[str, Any]:
        """Send one request object, block for its response line."""
        self._sock.sendall((json.dumps(msg) + "\n").encode())
        while b"\n" not in self._buf:
            chunk = self._sock.recv(1 << 16)
            if not chunk:
                raise ConnectionError("service closed the connection")
            self._buf += chunk
        line, self._buf = self._buf.split(b"\n", 1)
        return json.loads(line.decode())

    # Convenience wrappers mirroring the wire ops.
    def open(self, instance: AllocationInstance) -> dict[str, Any]:
        from repro.graphs.io import instance_to_json

        return self.call({"op": "open", "instance": json.loads(instance_to_json(instance))})

    def solve(self, instance_hash_hex: str, **request: Any) -> dict[str, Any]:
        return self.call(
            {"op": "solve", "instance_hash": instance_hash_hex, "request": request}
        )

    def reroll(self, instance_hash_hex: str, *, seed: Any = None) -> dict[str, Any]:
        return self.call({"op": "reroll", "instance_hash": instance_hash_hex, "seed": seed})

    def stats(self) -> dict[str, Any]:
        return self.call({"op": "stats"})

    def snapshot(self, instance_hash_hex: Optional[str] = None) -> dict[str, Any]:
        msg: dict[str, Any] = {"op": "snapshot"}
        if instance_hash_hex is not None:
            msg["instance_hash"] = instance_hash_hex
        return self.call(msg)

    def shutdown(self) -> dict[str, Any]:
        return self.call({"op": "shutdown"})

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        self.close()
        return False
