"""Versioned session snapshots with durable, torn-write-safe storage.

The serving layer's warm state — the converged β exponent vector, the
retained fractional solve, the seed cursor — is process-lifetime in
:class:`~repro.serve.AllocationSession`.  This module extends the
:class:`~repro.api.AllocationReport` to_json/from_json discipline to
*full session state* (DESIGN.md §14):

* :func:`snapshot_session` / :func:`snapshot_dynamic` capture a
  session as one pure-JSON payload under the versioned schema tag
  ``repro.serve/SessionSnapshot/v1``.  The payload embeds the solved
  instance itself (``repro.graphs.io`` format), so a restart can
  rehydrate a session knowing nothing but the store directory.
* :func:`restore_session` / :func:`restore_dynamic` rebuild a resident
  session from a payload.  Restore is *verified*: before the session
  is declared warm, the restored exponents are re-run through a
  throwaway :class:`~repro.core.proportional.ProportionalRun` until
  the λ-free certificate fires — a vector that cannot re-certify
  within a small round cap is discarded and the session comes up cold
  (never wrong, at worst slower).
* :class:`SnapshotStore` persists payloads under a store directory
  with write-to-temp + :func:`os.replace`, so a crash mid-write leaves
  at worst a torn temp file, never a torn snapshot.  ``latest`` skips
  torn JSON and stale schema versions and falls back to the newest
  *valid* file — corrupt state degrades to cold, it does not crash
  the service.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Optional, Union

import numpy as np

from repro.graphs.io import instance_from_json, instance_to_json
from repro.serve.session import AllocationSession
from repro.serve.shm import instance_hash

__all__ = [
    "SNAPSHOT_SCHEMA",
    "RestoredSession",
    "snapshot_session",
    "snapshot_dynamic",
    "restore_session",
    "restore_dynamic",
    "SnapshotStore",
]

SNAPSHOT_SCHEMA = "repro.serve/SessionSnapshot/v1"

_KINDS = ("allocation", "dynamic")

# Round cap for restore-time certificate re-verification.  A genuinely
# converged vector re-certifies in a phase or two; the cap only bounds
# how long a *stale* vector can stall the restore before the cold
# fallback takes over.
VERIFY_ROUND_CAP = 64


def _report_payload(result) -> dict[str, Any]:
    from repro.api.report import AllocationReport

    return AllocationReport.from_pipeline(result).payload


def snapshot_session(
    session: AllocationSession,
    *,
    seed_cursor: int = 0,
    kind: str = "allocation",
) -> dict[str, Any]:
    """Capture one session as a pure-JSON snapshot payload.

    ``seed_cursor`` is the service-layer count of seedless requests
    already answered on this instance — persisting it is what makes
    the i-th derived seed survive a restart (DESIGN.md §14).
    """
    if kind not in _KINDS:
        raise ValueError(f"snapshot kind must be one of {list(_KINDS)}, got {kind!r}")
    exponents = session.exponents_snapshot()
    last = session.last_result
    payload: dict[str, Any] = {
        "schema": SNAPSHOT_SCHEMA,
        "kind": kind,
        "instance_hash": instance_hash(session.instance),
        "instance": json.loads(instance_to_json(session.instance)),
        "epsilon": session.epsilon,
        "exponents": None if exponents is None else exponents.tolist(),
        "seed_cursor": int(seed_cursor),
        "stats": session.stats.as_dict(),
        "last_report": None,
        "fractional_x": None,
        "solved_capacities": None,
    }
    if last is not None:
        payload["last_report"] = _report_payload(last)
        # The retained fractional solve — what reroll_rounding rounds
        # against.  Pipeline-kind reports drop x by design; a snapshot
        # must keep it or the re-roll capability dies with the process.
        payload["fractional_x"] = last.mpc.allocation.x.tolist()
        solved = last.instance if last.instance is not None else session.instance
        if not np.array_equal(solved.capacities, session.instance.capacities):
            payload["solved_capacities"] = solved.capacities.tolist()
    return payload


def snapshot_dynamic(dsession, *, seed_cursor: int = 0) -> dict[str, Any]:
    """Capture a :class:`~repro.dynamic.DynamicSession` (the current
    generation's inner session plus the dynamic counters)."""
    payload = snapshot_session(
        dsession.session, seed_cursor=seed_cursor, kind="dynamic"
    )
    payload["dynamic_stats"] = dsession.stats.as_dict()
    return payload


def _rebuild_last_result(payload: Mapping[str, Any], instance):
    """Reconstruct a detached :class:`PipelineResult` from the snapshot.

    The rebuilt result carries exactly what the session's serving
    surfaces consume across a restart — the solved instance, the
    effective-config ``meta``, and an :class:`MPCResult` whose
    fractional allocation backs ``reroll_rounding``.  Audit-only
    intermediates that the report schema does not keep (the pre-drop
    sample, heavy-vertex masks, the boost stage object) come back
    empty; they describe *how* the original rounding went, not state
    any later request reads.
    """
    from repro.api.report import AllocationReport
    from repro.core.fractional import FractionalAllocation
    from repro.core.mpc_driver import MPCResult
    from repro.core.pipeline import PipelineResult
    from repro.rounding.sampling import RoundingOutcome

    report = AllocationReport.from_dict(payload["last_report"])
    x = np.asarray(payload["fractional_x"], dtype=np.float64)
    edge_mask = report.edge_mask
    assert edge_mask is not None
    meta = report.meta
    mpc = MPCResult(
        allocation=FractionalAllocation(x),
        match_weight=report.match_weight,
        local_rounds=report.local_rounds,
        mpc_rounds=report.mpc_rounds,
        ledger=report.round_ledger,
        certificate=report.certificate,
        guarantee=report.guarantee,
        epsilon=report.epsilon,
        meta=dict(meta),
        final_exponents=report.final_exponents,
    )
    size = report.size
    assert size is not None
    n = edge_mask.shape[0]
    rounding = RoundingOutcome(
        edge_mask=edge_mask.copy(),
        sampled_mask=np.zeros(n, dtype=bool),
        heavy_left=np.zeros(0, dtype=np.int64),
        heavy_right=np.zeros(0, dtype=np.int64),
    )
    solved = instance
    if payload.get("solved_capacities") is not None:
        solved = instance.with_capacities(
            np.asarray(payload["solved_capacities"], dtype=np.int64)
        )
    return PipelineResult(
        edge_mask=edge_mask,
        size=size,
        mpc=mpc,
        rounding=rounding,
        boosting=None,
        repaired_size=size,
        meta=dict(meta),
        stage_records=report.stage_records,
        instance=solved,
    )


def verify_exponents(
    instance,
    exponents: np.ndarray,
    epsilon: float,
    *,
    round_cap: int = VERIFY_ROUND_CAP,
    workspace=None,
) -> bool:
    """Re-verify a restored β vector against the λ-free certificate.

    A stored certificate cannot be trusted across a restart — the file
    may have been copied between instances, hand-edited, or written by
    a buggier past version.  Instead of trusting it, run the actual
    proportional dynamics from the restored vector on a *throwaway*
    run until :func:`~repro.core.termination.evaluate_certificate`
    fires.  A converged vector certifies within a phase or two; one
    that cannot certify within ``round_cap`` rounds is not warm state.
    The throwaway run never touches session state, so restore-then-
    solve stays bit-identical to never-snapshotted execution.
    """
    from repro.core.proportional import ProportionalRun
    from repro.core.termination import evaluate_certificate

    try:
        run = ProportionalRun(
            instance.graph,
            instance.capacities,
            epsilon,
            workspace=workspace,
            initial_exponents=exponents,
        )
    except (ValueError, TypeError):
        return False
    for _ in range(max(1, int(round_cap))):
        run.step()
        if evaluate_certificate(run).satisfied:
            return True
    return False


@dataclass
class RestoredSession:
    """Outcome of a restore: the rebuilt session plus what survived."""

    session: Any                      # AllocationSession or DynamicSession
    seed_cursor: int
    warm: bool                        # exponents installed and verified
    reason: Optional[str] = None      # why the restore fell back to cold

    @property
    def instance_hash(self) -> str:
        sess = getattr(self.session, "session", self.session)
        return instance_hash(sess.instance)


def _check_payload(payload: Mapping[str, Any], expected_kind: Optional[str]) -> None:
    schema = payload.get("schema")
    if schema != SNAPSHOT_SCHEMA:
        raise ValueError(
            f"unsupported snapshot schema {schema!r}; expected {SNAPSHOT_SCHEMA!r}"
        )
    kind = payload.get("kind")
    if kind not in _KINDS:
        raise ValueError(f"snapshot kind must be one of {list(_KINDS)}, got {kind!r}")
    if expected_kind is not None and kind != expected_kind:
        raise ValueError(f"expected a {expected_kind!r} snapshot, got {kind!r}")


def restore_session(
    payload: Mapping[str, Any],
    *,
    verify: bool = True,
    verify_round_cap: int = VERIFY_ROUND_CAP,
    kind: Optional[str] = "allocation",
    **session_kwargs: Any,
) -> RestoredSession:
    """Rebuild an :class:`AllocationSession` from a snapshot payload.

    The instance comes from the payload itself; ``session_kwargs`` are
    the solver defaults (epsilon, repair, boost, …) for the rebuilt
    session, exactly as they would be passed to the constructor.  With
    ``verify=True`` (the default) the restored exponents must pass
    :func:`verify_exponents` before the session is declared warm; any
    failure — bad vector shape, certificate never firing, a corrupt
    retained result — downgrades to a cold session rather than
    raising.
    """
    _check_payload(payload, kind)
    instance = instance_from_json(json.dumps(payload["instance"]))
    session_kwargs.setdefault("epsilon", payload.get("epsilon", 0.2))
    session = AllocationSession(instance, **session_kwargs)
    seed_cursor = int(payload.get("seed_cursor", 0))
    stats = payload.get("stats")

    exps = payload.get("exponents")
    if exps is None:
        session.restore_state(None, stats=stats)
        return RestoredSession(session, seed_cursor, warm=False, reason="no warm state")

    exponents = np.asarray(exps, dtype=np.int64)
    if exponents.shape != (instance.graph.n_right,):
        session.restore_state(None, stats=stats)
        return RestoredSession(
            session, seed_cursor, warm=False, reason="exponent shape mismatch"
        )
    if verify and not verify_exponents(
        instance,
        exponents,
        session.epsilon,
        round_cap=verify_round_cap,
        workspace=session.workspace,
    ):
        session.restore_state(None, stats=stats)
        return RestoredSession(
            session, seed_cursor, warm=False, reason="certificate re-verification failed"
        )

    last_result = None
    if payload.get("last_report") is not None and payload.get("fractional_x") is not None:
        try:
            last_result = _rebuild_last_result(payload, instance)
        except (KeyError, ValueError, TypeError):
            last_result = None  # warm exponents still stand; only re-roll is lost
    session.restore_state(exponents, last_result=last_result, stats=stats)
    return RestoredSession(session, seed_cursor, warm=True)


def restore_dynamic(
    payload: Mapping[str, Any],
    *,
    verify: bool = True,
    verify_round_cap: int = VERIFY_ROUND_CAP,
    **session_kwargs: Any,
) -> RestoredSession:
    """Rebuild a :class:`~repro.dynamic.DynamicSession` from a
    ``kind="dynamic"`` snapshot (current generation + counters)."""
    from repro.dynamic.session import DynamicSession

    _check_payload(payload, "dynamic")
    inner = restore_session(
        payload,
        verify=verify,
        verify_round_cap=verify_round_cap,
        kind="dynamic",
        **session_kwargs,
    )
    dsession = DynamicSession(inner.session.instance, **session_kwargs)
    # Adopt the fully-restored inner session (warm state, retained
    # result, counters) instead of the constructor's cold one.
    dsession.session = inner.session
    dstats = payload.get("dynamic_stats")
    if dstats:
        for name in dsession.stats.as_dict():
            if name in dstats:
                setattr(dsession.stats, name, int(dstats[name]))
    return RestoredSession(dsession, inner.seed_cursor, inner.warm, inner.reason)


class SnapshotStore:
    """Durable snapshot files under one store directory.

    Files are named ``{instance_hash[:16]}-{seq:010d}.json`` — the
    sequence number increases per save, so the newest snapshot of an
    instance sorts last lexicographically.  Writes go to a ``.tmp``
    sibling first and land via :func:`os.replace`, so readers never
    observe a partially-written snapshot under its final name.  Reads
    are defensive: torn JSON (a crashed writer on a non-atomic
    filesystem, a truncated copy) and files carrying a different
    schema version are *skipped*, falling back to the next-newest
    valid file — and to ``None`` (cold start) when nothing valid
    remains.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _files_for(self, hash_prefix: str) -> list[Path]:
        return sorted(self.root.glob(f"{hash_prefix}-*.json"))

    def save(self, payload: Mapping[str, Any]) -> Path:
        """Persist one snapshot payload atomically; returns its path."""
        _check_payload(payload, None)
        prefix = str(payload["instance_hash"])[:16]
        existing = self._files_for(prefix)
        seq = 0
        if existing:
            try:
                seq = int(existing[-1].stem.rsplit("-", 1)[1]) + 1
            except (IndexError, ValueError):
                seq = len(existing)
        path = self.root / f"{prefix}-{seq:010d}.json"
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True))
        os.replace(tmp, path)
        return path

    def _load_valid(self, path: Path) -> Optional[dict[str, Any]]:
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None  # torn or unreadable — skip
        if not isinstance(payload, dict) or payload.get("schema") != SNAPSHOT_SCHEMA:
            return None  # stale or foreign schema — skip
        return payload

    def latest(self, instance_hash_hex: str) -> Optional[dict[str, Any]]:
        """Newest *valid* snapshot payload for an instance hash, or
        ``None`` when every candidate is torn/stale/absent."""
        for path in reversed(self._files_for(instance_hash_hex[:16])):
            payload = self._load_valid(path)
            if payload is not None:
                return payload
        return None

    def latest_all(self) -> dict[str, dict[str, Any]]:
        """Newest valid payload per instance hash in the store — the
        restart-rehydration sweep."""
        by_prefix: dict[str, dict[str, Any]] = {}
        for path in sorted(self.root.glob("*-*.json")):
            prefix = path.stem.rsplit("-", 1)[0]
            payload = self._load_valid(path)
            if payload is not None:
                by_prefix[prefix] = payload  # sorted order: later wins
        return {p["instance_hash"]: p for p in by_prefix.values()}

    def prune(self, *, keep: int = 2) -> int:
        """Delete all but the ``keep`` newest files per instance;
        returns the number removed."""
        removed = 0
        prefixes = {p.stem.rsplit("-", 1)[0] for p in self.root.glob("*-*.json")}
        for prefix in prefixes:
            for path in self._files_for(prefix)[:-keep] if keep > 0 else self._files_for(prefix):
                path.unlink(missing_ok=True)
                removed += 1
        return removed
