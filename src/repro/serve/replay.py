"""Replay a delta stream over a dynamic session (DESIGN.md §9).

:func:`replay_stream` is the dynamic counterpart of
:func:`repro.serve.solve_stream`: it drives a
:class:`~repro.dynamic.DynamicSession` through a sequence of instance
deltas, re-solving after each one, and returns one :class:`ReplayStep`
audit record per event.  Seeds follow the batch determinism rule —
step ``i`` with no explicit request seed receives ``spawn(seed, n)[i]``
— so a replay is a pure function of ``(initial instance, delta list,
seed)``; delta application itself is deterministic.

Replays run serially by construction: each delta's instance depends on
the previous one, so the stream is a chain, not a batch.  The
parallelism story for dynamic serving is many independent streams,
each on its own session (thread-safe workspaces make sessions cheap to
keep resident side by side).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Optional, Sequence

from repro.core.pipeline import PipelineResult
from repro.serve.session import SolveRequest
from repro.utils.rng import spawn

__all__ = ["ReplayStep", "replay_stream"]


@dataclass(frozen=True)
class ReplayStep:
    """One stream event's audit record: what the delta did, and how
    the re-solve went."""

    index: int
    delta_kind: str
    structure_changed: bool
    noop: bool
    warm_start: bool
    local_rounds: int
    size: int
    certified: bool
    result: PipelineResult = field(repr=False)
    outcome: Any = field(repr=False)

    def as_row(self) -> dict[str, Any]:
        """JSON-serializable summary row (the CLI's output format)."""
        return {
            "step": self.index,
            "delta": self.delta_kind,
            "structure_changed": self.structure_changed,
            "noop": self.noop,
            "warm_start": self.warm_start,
            "local_rounds": self.local_rounds,
            "final_size": self.size,
            "certified": self.certified,
        }


def replay_stream(
    dynamic: Any,
    deltas: Sequence[Any],
    *,
    seed=None,
    requests: Optional[Sequence[Optional[SolveRequest]]] = None,
) -> list[ReplayStep]:
    """Apply each delta and re-solve; one :class:`ReplayStep` per event.

    ``dynamic`` is a :class:`repro.dynamic.DynamicSession` (typed
    loosely to keep the package dependency one-directional).
    ``requests`` optionally aligns a per-step
    :class:`~repro.serve.SolveRequest` with each delta (``None``
    entries use the session defaults); a request's explicit ``seed``
    wins over the spawned per-position stream, exactly as in
    :func:`~repro.serve.solve_batch`.

    Warm starts engage automatically once the session has a completed
    solve: prime the session (``dynamic.resolve(seed=...)``) before
    replaying, or accept that the first step runs cold.
    """
    deltas = list(deltas)
    if requests is not None and len(requests) != len(deltas):
        raise ValueError(
            f"got {len(requests)} requests for {len(deltas)} deltas"
        )
    streams = spawn(seed, len(deltas))
    steps: list[ReplayStep] = []
    for i, (delta, stream) in enumerate(zip(deltas, streams)):
        outcome = dynamic.apply(delta)
        request = requests[i] if requests is not None else None
        if request is None:
            request = SolveRequest(seed=stream)
        elif request.seed is None:
            request = replace(request, seed=stream)
        result = dynamic.resolve(request)
        cert = result.mpc.certificate
        steps.append(
            ReplayStep(
                index=i,
                delta_kind=getattr(delta, "kind", type(delta).__name__),
                structure_changed=outcome.structure_changed,
                noop=outcome.noop,
                warm_start=bool(result.meta.get("warm_start")),
                local_rounds=result.mpc.local_rounds,
                size=result.size,
                certified=bool(cert is not None and cert.satisfied),
                result=result,
                outcome=outcome,
            )
        )
    return steps
