"""repro.serve — the heavy-traffic serving layer (DESIGN.md §8).

One resident graph answering many solve requests is the common serving
shape; this package turns the cold single-call pipeline into that
shape:

* :class:`SolveRequest` — a declarative request: ε / capacity / seed /
  stage overrides against a session's defaults.
* :class:`AllocationSession` — a resident solver per graph: cached
  :class:`~repro.kernels.RoundWorkspace`, per-graph invariants, and
  the last converged β exponent vector for warm-started solves.
* :func:`solve_batch` — thread-parallel batch execution across
  sessions with the seed-per-position determinism contract.
* :func:`replay_stream` — drive a :class:`repro.dynamic.DynamicSession`
  through a delta stream, re-solving (warm) after every event
  (DESIGN.md §9).
* :class:`ShardedExecutor` — the multi-process tier (DESIGN.md §12):
  N shard workers with resident session fleets, instances published to
  ``multiprocessing.shared_memory`` (:mod:`repro.serve.shm`) and
  routed by stable content hash, bit-identical to the thread path.
* :class:`AllocationService` + :mod:`repro.serve.snapshot` — the
  durable tier (DESIGN.md §14): versioned session snapshots with
  atomic persistence and certificate-verified restore, behind an
  asyncio JSONL-over-socket front end with admission control, request
  coalescing, and crash recovery.

Cold solves stay bit-identical to
:func:`repro.core.pipeline.solve_allocation`; warm solves pass the
same certificate and feasibility validation.  The stage layer the
sessions run on lives in :mod:`repro.core.pipeline`.
"""

from __future__ import annotations

from repro.serve.batch import solve_batch, solve_stream
from repro.serve.replay import ReplayStep, replay_stream
from repro.serve.session import (
    AllocationSession,
    SessionStats,
    SolveRequest,
    check_integral_feasible,
)
from repro.serve.shm import (
    AttachedInstance,
    SharedInstance,
    SharedInstanceDescriptor,
    attach_instance,
    instance_hash,
)

from repro.serve.snapshot import (
    SNAPSHOT_SCHEMA,
    RestoredSession,
    SnapshotStore,
    restore_dynamic,
    restore_session,
    snapshot_dynamic,
    snapshot_session,
)

# Imported last: sharding pulls in repro.api (config/report), which may
# itself be mid-import via engine → repro.serve.session; by this point
# every serve submodule it needs is already in sys.modules.
from repro.serve.service import (
    AllocationService,
    ServiceClient,
    ServiceError,
    run_service,
)
from repro.serve.sharding import ShardedExecutor, ShardReplayResult

__all__ = [
    "AllocationSession",
    "SessionStats",
    "SolveRequest",
    "check_integral_feasible",
    "solve_batch",
    "solve_stream",
    "ReplayStep",
    "replay_stream",
    "instance_hash",
    "SharedInstance",
    "SharedInstanceDescriptor",
    "AttachedInstance",
    "attach_instance",
    "ShardedExecutor",
    "ShardReplayResult",
    "SNAPSHOT_SCHEMA",
    "RestoredSession",
    "SnapshotStore",
    "snapshot_session",
    "snapshot_dynamic",
    "restore_session",
    "restore_dynamic",
    "AllocationService",
    "ServiceClient",
    "ServiceError",
    "run_service",
]
