"""Resident allocation sessions with warm-started solves (DESIGN.md §8).

The common serving shape is one resident graph answering many solve
requests — ε sweeps, capacity updates, reseeded roundings.  A cold
:func:`repro.core.pipeline.solve_allocation` call pays the full
pipeline every time; an :class:`AllocationSession` keeps everything
per-graph resident between requests:

* the cached :class:`~repro.kernels.RoundWorkspace` (slot-owner
  indices, reduceat offsets, scratch buffers),
* the per-graph structural invariants behind it, and
* the last converged β exponent vector, which warm-starts the next
  solve's proportional dynamics.

Warm starts are principled, not a heuristic: the integer-exponent
dynamics (Algorithm 1/3) converge from any starting vector and the
λ-free certificate (remark after Theorem 9) validates termination
regardless of the start, so after a small capacity or ε perturbation
the retained ``b`` is a near-fixed-point start and the certificate
fires within a phase or two instead of the full cold budget.  The
certificate is asserted on every warm solve, and the integral output
is re-checked for feasibility — a warm solve can be faster, never
less validated.

Cold solves (``warm=False``) are bit-identical to
:func:`~repro.core.pipeline.solve_allocation` for the same seed — the
session only changes *where* state lives, never cold semantics.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from typing import Any, Literal, Mapping, Optional, Sequence

import numpy as np

from repro.core.pipeline import (
    BoostStage,
    PipelineResult,
    RepairStage,
    RoundingStage,
    default_stages,
    run_pipeline,
)
from repro.graphs.capacities import validate_integral_allocation
from repro.graphs.instances import AllocationInstance
from repro.kernels import workspace_for
from repro.utils.validation import check_fraction

__all__ = [
    "SolveRequest",
    "SessionStats",
    "AllocationSession",
    "check_integral_feasible",
]


@dataclass(frozen=True)
class SolveRequest:
    """One serving request against a resident session.

    Every field except ``seed``/``warm`` is an *override* of the
    session's defaults; ``None`` means "use the session default".
    ``capacities`` replaces the whole capacity vector;
    ``capacity_updates`` patches individual right vertices (the common
    capacity-update request) — both may not be combined.
    """

    epsilon: Optional[float] = None
    capacities: Optional[Any] = None
    capacity_updates: Optional[Mapping[int, int]] = None
    seed: Any = None
    warm: bool = True
    repair: Optional[bool] = None
    boost: Optional[bool] = None
    boost_epsilon: Optional[float] = None
    rounding_copies: Optional[int] = None
    tag: Optional[str] = None

    def __post_init__(self) -> None:
        if self.capacities is not None and self.capacity_updates is not None:
            raise ValueError("pass capacities or capacity_updates, not both")

    @classmethod
    def from_json(cls, obj: Mapping[str, Any]) -> "SolveRequest":
        """Build a request from one decoded JSONL object.

        Unknown keys, wrong-typed scalars, and non-integer capacities
        are all rejected so malformed request files fail loudly instead
        of silently doing something different from what was written.
        """
        known = {f for f in cls.__dataclass_fields__}
        extra = set(obj) - known
        if extra:
            raise ValueError(
                f"unknown request fields {sorted(extra)}; known: {sorted(known)}"
            )
        kwargs = dict(obj)

        def _is_int(v: Any) -> bool:
            return isinstance(v, (int, np.integer)) and not isinstance(v, bool)

        scalar_checks = {
            "epsilon": (lambda v: _is_int(v) or isinstance(v, float), "a number"),
            "boost_epsilon": (lambda v: _is_int(v) or isinstance(v, float), "a number"),
            "seed": (_is_int, "an integer"),
            "warm": (lambda v: isinstance(v, bool), "a boolean"),
            "repair": (lambda v: isinstance(v, bool), "a boolean"),
            "boost": (lambda v: isinstance(v, bool), "a boolean"),
            "rounding_copies": (_is_int, "an integer"),
            "tag": (lambda v: isinstance(v, str), "a string"),
        }
        for field_name, (check, expected) in scalar_checks.items():
            value = kwargs.get(field_name)
            if value is not None and not check(value):
                raise ValueError(
                    f"request field {field_name!r} must be {expected}, "
                    f"got {value!r}"
                )
        # Domain checks at parse time, so a bad ε is reported with its
        # line number instead of failing mid-batch (same validators the
        # solve itself applies).
        if kwargs.get("epsilon") is not None:
            check_fraction(kwargs["epsilon"], "epsilon", inclusive_high=0.25)
        if kwargs.get("boost_epsilon") is not None:
            check_fraction(kwargs["boost_epsilon"], "boost_epsilon")
        caps = kwargs.get("capacities")
        if caps is not None:
            if not isinstance(caps, Sequence) or isinstance(caps, (str, bytes)):
                raise ValueError(
                    f"capacities must be an array of integer capacities, "
                    f"got {type(caps).__name__}"
                )
            for i, v in enumerate(caps):
                if not _is_int(v):
                    raise ValueError(
                        f"capacities[{i}] must be an integer, got {v!r}"
                    )
        updates = kwargs.get("capacity_updates")
        if updates is not None:
            if not isinstance(updates, Mapping):
                raise ValueError(
                    "capacity_updates must be an object mapping vertex id "
                    f"to capacity, got {type(updates).__name__}"
                )
            cleaned: dict[int, int] = {}
            for k, v in updates.items():
                if isinstance(v, bool) or not isinstance(v, (int, np.integer)):
                    raise ValueError(
                        f"capacity_updates[{k!r}] must be an integer "
                        f"capacity, got {v!r}"
                    )
                cleaned[int(k)] = int(v)
            kwargs["capacity_updates"] = cleaned
        return cls(**kwargs)


@dataclass
class SessionStats:
    """Counters a serving layer would export."""

    solves: int = 0
    warm_solves: int = 0
    cold_solves: int = 0
    rounding_rerolls: int = 0
    local_rounds_total: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "solves": self.solves,
            "warm_solves": self.warm_solves,
            "cold_solves": self.cold_solves,
            "rounding_rerolls": self.rounding_rerolls,
            "local_rounds_total": self.local_rounds_total,
        }


def check_integral_feasible(
    instance: AllocationInstance, edge_mask: np.ndarray
) -> None:
    """Raise ``ValueError`` if ``edge_mask`` is not a feasible integral
    allocation for ``instance`` (delegates to the shared Definition-5
    check in :mod:`repro.graphs.capacities`)."""
    validate_integral_allocation(instance.graph, instance.capacities, edge_mask)


class AllocationSession:
    """A resident solver instance for one graph (DESIGN.md §8).

    Construct once per served graph, then call :meth:`solve` per
    request.  Thread safety: the session may be *shared* with
    :func:`repro.serve.solve_batch`, which snapshots the warm state up
    front and commits once at the end; direct concurrent ``solve``
    calls on one session are serialized by the state lock only around
    snapshot/commit, so the heavy solve work runs in parallel.
    """

    def __init__(
        self,
        instance: AllocationInstance,
        *,
        epsilon: float = 0.2,
        repair: bool = True,
        boost: bool = True,
        boost_epsilon: Optional[float] = None,
        boost_mode: Literal["layered", "deterministic"] = "layered",
        rounding_copies: Optional[int] = None,
        lam: Optional[int] = None,
        alpha: float = 0.5,
        mpc_options: Optional[dict[str, Any]] = None,
    ):
        self.instance = instance
        self.epsilon = check_fraction(epsilon, "epsilon", inclusive_high=0.25)
        self.repair = repair
        self.boost = boost
        self.boost_epsilon = boost_epsilon
        self.boost_mode = boost_mode
        self.rounding_copies = rounding_copies
        self.lam = lam
        self.alpha = alpha
        self.mpc_options = dict(mpc_options or {})
        # Resident per-graph state: one cached workspace for every
        # stage of every request (structural invariants + scratch).
        self.workspace = workspace_for(instance.graph)
        self.stats = SessionStats()
        self._lock = threading.Lock()
        self._exponents: Optional[np.ndarray] = None
        self._last_result: Optional[PipelineResult] = None

    # -- warm state ----------------------------------------------------
    def exponents_snapshot(self) -> Optional[np.ndarray]:
        """Copy of the retained converged exponent vector (or ``None``
        before the first completed solve)."""
        with self._lock:
            return None if self._exponents is None else self._exponents.copy()

    def reset(self) -> None:
        """Drop the warm state; the next solve runs cold."""
        with self._lock:
            self._exponents = None
            self._last_result = None

    def prime_exponents(self, exponents: np.ndarray) -> None:
        """Install a retained β exponent vector directly, so the next
        ``warm=True`` solve starts from it.

        The dynamic layer's remap path (DESIGN.md §9): after an
        instance delta, the surviving servers' converged exponents are
        remapped onto the new instance and primed into the fresh
        session — no completed solve required.  The vector is validated
        against this session's graph; the usual warm-path certificate
        and feasibility assertions still gate every solve that uses it.
        """
        from repro.core.proportional import validate_initial_exponents

        base = validate_initial_exponents(self.instance.graph, exponents)
        assert base is not None
        with self._lock:
            self._exponents = base.copy()

    @property
    def last_result(self) -> Optional[PipelineResult]:
        with self._lock:
            return self._last_result

    def restore_state(
        self,
        exponents: Optional[np.ndarray],
        *,
        last_result: Optional[PipelineResult] = None,
        stats: Optional[Mapping[str, int]] = None,
    ) -> None:
        """Install persisted warm state in one shot (the snapshot-restore
        path, DESIGN.md §14).

        Unlike :meth:`prime_exponents` this also reinstates the retained
        pipeline result (so :meth:`reroll_rounding` works across a
        restart) and the exported counters.  The exponent vector is
        validated against this session's graph; certificate
        re-verification is the restorer's job
        (:func:`repro.serve.snapshot.restore_session`), because only it
        knows whether a stale vector should fall back to cold.
        """
        from repro.core.proportional import validate_initial_exponents

        base = None
        if exponents is not None:
            base = validate_initial_exponents(self.instance.graph, exponents)
            assert base is not None
            base = base.copy()
        with self._lock:
            self._exponents = base
            self._last_result = last_result
            if stats is not None:
                for name in self.stats.as_dict():
                    if name in stats:
                        setattr(self.stats, name, int(stats[name]))

    def commit(self, result: PipelineResult) -> None:
        """Retain a solve's converged exponents as the next warm start.

        Counters are *not* updated here — :meth:`solve_detached` counts
        every executed request, while a batch commits only once per
        session (DESIGN.md §8.3).
        """
        if result.mpc.final_exponents is None:  # pragma: no cover - defensive
            return
        with self._lock:
            self._exponents = result.mpc.final_exponents.copy()
            self._last_result = result

    # -- request plumbing ----------------------------------------------
    def _normalize(self, request: Optional[SolveRequest], overrides: dict) -> SolveRequest:
        if request is None:
            request = SolveRequest()
        if overrides:
            request = replace(request, **overrides)
        return request

    def _request_instance(self, request: SolveRequest) -> AllocationInstance:
        if request.capacities is not None:
            return self.instance.with_capacities(
                np.asarray(request.capacities, dtype=np.int64)
            )
        if request.capacity_updates:
            n_right = self.instance.graph.n_right
            caps = self.instance.capacities.copy()
            for v, c in request.capacity_updates.items():
                v = int(v)
                if not 0 <= v < n_right:
                    raise ValueError(
                        f"capacity_updates vertex id {v} out of range "
                        f"[0, {n_right})"
                    )
                caps[v] = int(c)
            return self.instance.with_capacities(caps)
        return self.instance

    def _stages(self, request: SolveRequest):
        repair = self.repair if request.repair is None else request.repair
        boost = self.boost if request.boost is None else request.boost
        # boost_epsilon=None flows through to BoostStage, which owns
        # the max(ε, 0.25) default — one resolver, not three.
        boost_epsilon = (
            request.boost_epsilon
            if request.boost_epsilon is not None
            else self.boost_epsilon
        )
        copies = (
            request.rounding_copies
            if request.rounding_copies is not None
            else self.rounding_copies
        )
        stages = default_stages(
            repair=repair,
            boost=boost,
            boost_epsilon=boost_epsilon,
            boost_mode=self.boost_mode,
            lam=self.lam,
            alpha=self.alpha,
            rounding_copies=copies,
            mpc_options=self.mpc_options,
        )
        # Effective per-request config, recorded in result.meta so a
        # re-roll can reproduce the configuration it re-rounds.
        config = {
            "repair": repair,
            "boost": boost,
            "boost_epsilon": boost_epsilon,
            "rounding_copies": copies,
        }
        return stages, config

    def solve_detached(
        self,
        request: Optional[SolveRequest] = None,
        *,
        initial_exponents: Optional[np.ndarray] = None,
        **overrides: Any,
    ) -> PipelineResult:
        """Solve one request from an explicit warm base without touching
        session state (the batch executor's building block).

        ``initial_exponents=None`` is a cold solve — bit-identical to
        :func:`~repro.core.pipeline.solve_allocation` for the same
        effective parameters and seed.
        """
        request = self._normalize(request, overrides)
        instance = self._request_instance(request)
        epsilon = request.epsilon if request.epsilon is not None else self.epsilon
        stages, config = self._stages(request)
        result = run_pipeline(
            instance,
            stages,
            epsilon,
            seed=request.seed,
            workspace=self.workspace,
            initial_exponents=initial_exponents,
            meta={
                **config,
                "warm_start": initial_exponents is not None,
                "tag": request.tag,
            },
        )
        with self._lock:
            self.stats.solves += 1
            if initial_exponents is not None:
                self.stats.warm_solves += 1
            else:
                self.stats.cold_solves += 1
            self.stats.local_rounds_total += result.mpc.local_rounds
        if initial_exponents is not None:
            # The warm-path contract (DESIGN.md §8): the λ-free
            # certificate must have validated termination, and the
            # integral output must pass the same feasibility checks as
            # a cold solve.
            cert = result.mpc.certificate
            if cert is None or not cert.satisfied:  # pragma: no cover - driver raises first
                raise AssertionError("warm solve ended without a satisfied certificate")
            check_integral_feasible(instance, result.edge_mask)
        return result

    def solve(
        self, request: Optional[SolveRequest] = None, **overrides: Any
    ) -> PipelineResult:
        """Solve one request, warm-starting from the retained exponents
        (unless ``warm=False`` or no solve has completed yet), then
        retain the new converged exponents."""
        req = self._normalize(request, overrides)
        initial = self.exponents_snapshot() if req.warm else None
        result = self.solve_detached(req, initial_exponents=initial)
        self.commit(result)
        return result

    def reroll_rounding(
        self,
        *,
        seed: Any = None,
        copies: Optional[int] = None,
        repair: Optional[bool] = None,
        boost: Optional[bool] = None,
    ) -> PipelineResult:
        """Re-round the cached fractional solve under a fresh seed.

        The reseeded-rounding serving shape: stage composability lets
        the session re-run only rounding (and optionally repair/boost)
        against the last request's cached fractional allocation — no
        dynamics at all.  Runs on the last request's *solved* instance
        (capacity overrides included) with the last request's effective
        stage configuration (copies, repair/boost selection, boost ε),
        so the re-roll reproduces the solve it re-rounds except for the
        explicitly overridden knobs.  Requires a completed solve.
        """
        with self._lock:
            last = self._last_result
        if last is None:
            raise RuntimeError("no completed solve to re-roll; call solve() first")
        instance = last.instance if last.instance is not None else self.instance
        epsilon = last.meta.get("epsilon", self.epsilon)
        do_repair = last.meta.get("repair", self.repair) if repair is None else repair
        do_boost = last.meta.get("boost", self.boost) if boost is None else boost
        if copies is None:
            copies = last.meta.get("rounding_copies", self.rounding_copies)
        stages: list = [RoundingStage(copies=copies)]
        if do_repair:
            stages.append(RepairStage())
        if do_boost:
            stages.append(
                BoostStage(
                    epsilon=last.meta.get("boost_epsilon", self.boost_epsilon),
                    mode=self.boost_mode,
                )
            )
        result = run_pipeline(
            instance,
            stages,
            epsilon,
            seed=seed,
            workspace=self.workspace,
            cached_fractional=last.mpc,
            meta={"rounding_reroll": True},
        )
        check_integral_feasible(instance, result.edge_mask)
        with self._lock:
            self.stats.rounding_rerolls += 1
        return result
