"""Multi-process sharded serving (DESIGN.md §12).

``solve_batch`` is thread-parallel, so the GIL caps the whole serving
layer at one core regardless of how fast the native kernel made each
round (BENCH_serving.json records batch ≈ single-session throughput on
a 1-CPU host).  :class:`ShardedExecutor` is the process-pool answer: it
forks N shard workers, each owning a resident fleet of
:class:`~repro.serve.AllocationSession` /
:class:`~repro.dynamic.DynamicSession` objects, and routes every
request by the stable content hash of its instance
(:func:`~repro.serve.shm.instance_hash`), so the same instance always
lands on the same shard and finds its warm session.

Communication follows the one-sided shared-memory discipline of the
2.5D SpGEMM line of work (PAPERS.md): instance state — CSR arrays,
capacities, derived kernel-layout invariants, and the retained
converged β exponent vector — lives in named
``multiprocessing.shared_memory`` segments
(:mod:`repro.serve.shm`); workers *attach by name* instead of
receiving pickled arrays, and only small control messages (request
overrides, seeds, positions) travel over the queues.  Results come
back as versioned :class:`~repro.api.AllocationReport` JSON and are
returned to the caller as detached reports.

Determinism (the cross-executor contract, asserted in
``tests/test_sharding.py``): request ``i`` with no explicit seed
receives ``spawn(seed, n)[i]`` — assigned by the dispatcher *before*
routing — and each shard processes its instances' sub-streams in
position order with exactly the thread path's snapshot/commit rule
(:mod:`repro.serve.batch`).  A batch is therefore a pure function of
``(instances, request list, seed)``: bit-identical across worker
counts 1/2/4 and bit-identical to the thread executor on the same
stream.

Crash semantics: a worker death is detected during result collection
(the batch raises ``RuntimeError`` naming the lost shard); the next
batch respawns the worker, which re-attaches its instances and
re-primes warm state from the shared exponent segments — warmth
survives the crash.  :meth:`ShardedExecutor.close` (also run via a
``weakref.finalize`` guard on interpreter exit) terminates workers and
unlinks every published segment, dead workers or not.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import queue as queue_mod
import time
import traceback
import weakref
from dataclasses import dataclass, replace
from typing import Any, Mapping, Optional, Sequence, Union

from repro.graphs.instances import AllocationInstance
from repro.serve.session import SolveRequest
from repro.serve.shm import SharedInstance, attach_instance, instance_hash
from repro.utils.rng import spawn
from repro.utils.validation import check_positive_int

__all__ = ["ShardedExecutor", "ShardReplayResult"]

InstancesLike = Union[AllocationInstance, Sequence[AllocationInstance]]

_POLL_SECONDS = 0.2


@dataclass(frozen=True)
class ShardReplayResult:
    """Outcome of a sharded delta-stream replay: the priming report,
    one audit row + detached report per step, and the remote
    :class:`~repro.dynamic.DynamicSession` stats."""

    prime: Optional[AllocationReport]
    rows: tuple[dict, ...]
    reports: tuple[AllocationReport, ...]
    stats: dict


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _shard_worker(index: int, task_queue, result_queue, config: SolverConfig) -> None:
    """One shard: attach instances, serve sub-streams, report JSON.

    Runs until a ``("shutdown",)`` message.  Module-level so every
    start method (fork/spawn/forkserver) can import it.
    """
    from repro.api.engine import Engine
    from repro.api.report import AllocationReport
    from repro.serve.session import AllocationSession

    engine = Engine(config).activate()
    attached: dict[str, Any] = {}
    sessions: dict[str, AllocationSession] = {}
    counters = {"batches": 0, "replays": 0, "solves": 0}

    def _attachment(content_hash: str, descriptor):
        att = attached.get(content_hash)
        if att is None:
            if descriptor is None:  # pragma: no cover - dispatcher always resends
                raise RuntimeError(
                    f"shard {index} has no attachment for {content_hash[:12]}"
                )
            att = attach_instance(descriptor)
            attached[content_hash] = att
        return att

    def _session(content_hash: str, descriptor) -> AllocationSession:
        session = sessions.get(content_hash)
        if session is None:
            att = _attachment(content_hash, descriptor)
            session = AllocationSession(att.instance, **config.session_kwargs())
            warm = att.load_exponents()
            if warm is not None:
                # Crash recovery / executor-level warmth: prime from the
                # shared segment so the first solve warm-starts.
                session.prime_exponents(warm)
            sessions[content_hash] = session
        return session

    def _handle_batch(seq, content_hash, descriptor, items, prime) -> None:
        counters["batches"] += 1
        positions = [p for p, _ in items]
        try:
            session = _session(content_hash, descriptor)
            results: dict[int, Any] = {}
            latencies: dict[int, float] = {}
            rest = items
            if prime and items:
                # Mirror solve_stream: first request serially through
                # solve() (committing its exponents), remainder batched
                # from the post-commit snapshot.
                pos0, req0 = items[0]
                t0 = time.perf_counter()
                results[pos0] = session.solve(req0)
                latencies[pos0] = time.perf_counter() - t0
                rest = items[1:]
            if rest:
                # The solve_batch snapshot/commit rule, serialized: all
                # requests from one snapshot, highest position commits.
                snapshot = session.exponents_snapshot()
                for pos, req in rest:
                    initial = snapshot if req.warm else None
                    t0 = time.perf_counter()
                    results[pos] = session.solve_detached(
                        req, initial_exponents=initial
                    )
                    latencies[pos] = time.perf_counter() - t0
                session.commit(results[rest[-1][0]])
            counters["solves"] += len(items)
            exponents = session.exponents_snapshot()
            if exponents is not None:
                attached[content_hash].store_exponents(exponents)
            for pos in positions:
                # Transport as unsorted JSON: insertion order survives
                # the hop, so a detached report prints summary rows
                # key-for-key identical to a live one.
                report = AllocationReport.from_pipeline(results[pos])
                result_queue.put(
                    ("ok", seq, index, pos, json.dumps(report.payload),
                     latencies[pos])
                )
        except Exception:
            result_queue.put(
                ("batch_err", seq, index, positions, traceback.format_exc())
            )

    def _handle_replay(token, content_hash, descriptor, deltas, requests,
                       seed, prime) -> None:
        counters["replays"] += 1
        try:
            from repro.dynamic.session import DynamicSession
            from repro.serve.replay import replay_stream

            att = _attachment(content_hash, descriptor)
            dynamic = DynamicSession(att.instance, **config.session_kwargs())
            prime_json = None
            if prime:
                prime_json = json.dumps(AllocationReport.from_pipeline(
                    dynamic.resolve(seed=seed)
                ).payload)
            steps = replay_stream(dynamic, deltas, seed=seed, requests=requests)
            counters["solves"] += len(steps) + int(prime)
            payload = {
                "prime": prime_json,
                "rows": [step.as_row() for step in steps],
                "reports": [
                    json.dumps(AllocationReport.from_pipeline(step.result).payload)
                    for step in steps
                ],
                "stats": dynamic.stats.as_dict(),
            }
            result_queue.put(("replay_ok", index, token, payload))
        except Exception:
            result_queue.put(("replay_err", index, token, traceback.format_exc()))

    try:
        while True:
            msg = task_queue.get()
            kind = msg[0]
            if kind == "shutdown":
                break
            if kind == "batch":
                _handle_batch(*msg[1:])
            elif kind == "replay":
                _handle_replay(*msg[1:])
            elif kind == "stats":
                result_queue.put(
                    ("stats", index, {
                        "worker": dict(counters),
                        "sessions": {
                            h: s.stats.as_dict() for h, s in sessions.items()
                        },
                    })
                )
    finally:
        for att in attached.values():
            att.close()
        engine.close()


# ----------------------------------------------------------------------
# Dispatcher side
# ----------------------------------------------------------------------
def _terminate_and_unlink(procs: list, shared: dict) -> None:
    """Finalizer body: kill workers, free segments.  Holds only the
    mutable containers, never the executor, so GC can collect it."""
    for proc in procs:
        if proc is not None and proc.is_alive():
            proc.terminate()
    for proc in procs:
        if proc is not None:
            proc.join(timeout=2.0)
    for handle in shared.values():
        handle.unlink()
    shared.clear()


class ShardedExecutor:
    """A resident fleet of shard worker processes (DESIGN.md §12).

    Parameters
    ----------
    workers:
        Number of shard processes.  Each owns the sessions of the
        instances hashing to it.
    config:
        The :class:`~repro.api.SolverConfig` every worker activates and
        builds sessions from (defaults: ``SolverConfig()``).
    start_method:
        ``multiprocessing`` start method; default prefers ``fork``
        (cheap, Linux) and falls back to ``spawn``.

    Use as a context manager, or pair with :meth:`close` — closing
    shuts the workers down and unlinks every shared-memory segment the
    executor published (a ``weakref.finalize`` guard does the same on
    interpreter exit if the caller forgot).
    """

    def __init__(
        self,
        workers: int,
        *,
        config: Optional[SolverConfig] = None,
        start_method: Optional[str] = None,
    ):
        # repro.api is imported lazily everywhere in this module: the
        # serve and api packages import each other (engine -> serve
        # sessions, sharding -> api config/report), and either one may
        # be mid-initialization when this module loads.
        from repro.api.config import SolverConfig

        self.workers = check_positive_int(workers, "workers")
        self.config = config if config is not None else SolverConfig()
        if not isinstance(self.config, SolverConfig):
            raise TypeError(
                f"config must be a SolverConfig, got {type(self.config).__name__}"
            )
        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        self._ctx = mp.get_context(start_method)
        self._procs: list = [None] * self.workers
        self._task_queues: list = [None] * self.workers
        self._result_queue = None
        self._shared: dict[str, SharedInstance] = {}
        self._sent: list[set[str]] = [set() for _ in range(self.workers)]
        self._batch_seq = 0
        self._replay_token = 0
        self.restarts = 0
        self.last_latencies: list[Optional[float]] = []
        self._started = False
        self._closed = False
        self._finalizer = None

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "ShardedExecutor":
        """Spawn the fleet (idempotent; batches call this lazily)."""
        if self._closed:
            raise RuntimeError("executor is closed")
        if not self._started:
            self._result_queue = self._ctx.Queue()
            for i in range(self.workers):
                self._spawn_worker(i)
            self._started = True
            self._finalizer = weakref.finalize(
                self, _terminate_and_unlink, self._procs, self._shared
            )
        return self

    def _spawn_worker(self, index: int) -> None:
        task_queue = self._ctx.Queue()
        proc = self._ctx.Process(
            target=_shard_worker,
            args=(index, task_queue, self._result_queue, self.config),
            daemon=True,
            name=f"repro-shard-{index}",
        )
        proc.start()
        self._task_queues[index] = task_queue
        self._procs[index] = proc
        # A fresh worker has no attachments: resend descriptors.
        self._sent[index] = set()

    def _ensure_workers(self) -> None:
        self.start()
        dead = False
        for proc in self._procs:
            if proc is None:
                dead = True
            elif not proc.is_alive():
                proc.join(timeout=1.0)
                self.restarts += 1
                dead = True
        if dead:
            self._rebuild_fleet()

    def _rebuild_fleet(self) -> None:
        """Respawn the whole fleet on a fresh result queue.

        Per-worker respawn into the surviving result queue is not
        safe: a worker killed abruptly can die between ``send_bytes``
        and releasing the queue's shared write lock (its feeder thread
        acquires the lock around every send, and on a busy host the
        dispatcher can consume the result and issue the kill before
        the feeder is rescheduled to release).  The lock then stays
        held forever and every other writer's feeder blocks in
        ``wacquire`` — so one abrupt death poisons the queue for the
        fleet.  Discarding the queues and respawning everyone is the
        only clean recovery; warmth is not lost because converged
        exponents live in the shared-memory exponent segments, which
        the fresh workers re-attach and prime from.
        """
        for proc in self._procs:
            if proc is not None and proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            if proc is not None:
                proc.join(timeout=2.0)
        for q in [*self._task_queues, self._result_queue]:
            if q is not None:
                q.close()
                q.cancel_join_thread()
        self._result_queue = self._ctx.Queue()
        for i in range(self.workers):
            self._spawn_worker(i)

    def close(self) -> None:
        """Shut the fleet down and unlink every published segment —
        effective even when workers already crashed.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._started:
            for i, proc in enumerate(self._procs):
                if proc is not None and proc.is_alive():
                    try:
                        self._task_queues[i].put(("shutdown",))
                    except (ValueError, OSError):  # pragma: no cover
                        pass
            for proc in self._procs:
                if proc is not None:
                    proc.join(timeout=5.0)
            if self._finalizer is not None:
                self._finalizer()  # terminates stragglers, unlinks shm
            for q in [*self._task_queues, self._result_queue]:
                if q is not None:
                    q.close()
                    q.cancel_join_thread()

    def __enter__(self) -> "ShardedExecutor":
        return self.start()

    def __exit__(self, *exc_info: Any) -> bool:
        self.close()
        return False

    # -- routing ---------------------------------------------------------
    def shard_of(self, instance: AllocationInstance) -> int:
        """The worker index ``instance`` routes to (stable content
        hash modulo worker count)."""
        return int(instance_hash(instance), 16) % self.workers

    def publish(self, instance: AllocationInstance) -> str:
        """Place ``instance`` in shared memory (idempotent per
        content); returns its content hash."""
        content = instance_hash(instance)
        if content not in self._shared:
            self._shared[content] = SharedInstance.publish(instance)
        return content

    def warm_exponents(self, instance: AllocationInstance):
        """Dispatcher-side peek at an instance's retained β vector in
        shared memory (``None`` before its shard first commits)."""
        content = instance_hash(instance)
        handle = self._shared.get(content)
        if handle is None:
            return None
        _, exponents = handle.exponents()
        return exponents

    def _descriptor_for(self, shard: int, content: str):
        """The descriptor to ship with a task — only on the shard's
        first sight of the instance (or after a respawn)."""
        if content in self._sent[shard]:
            return None
        self._sent[shard].add(content)
        return self._shared[content].descriptor

    # -- batch execution -------------------------------------------------
    def run_batch(
        self,
        instances: InstancesLike,
        requests: Sequence[Union[SolveRequest, Mapping[str, Any]]],
        *,
        seed=None,
        prime: bool = True,
        timeout: Optional[float] = None,
    ) -> list[AllocationReport]:
        """Serve a request batch across the shard fleet.

        ``instances`` is one instance (every request targets it) or a
        sequence aligned with ``requests`` (multi-tenant; the same
        instance may appear many times).  Per instance, the sub-stream
        follows :func:`~repro.serve.batch.solve_stream` semantics when
        ``prime=True`` (first request serially, remainder from the
        post-commit snapshot) and :func:`~repro.serve.batch.solve_batch`
        semantics when ``prime=False``.  Returns detached
        :class:`~repro.api.AllocationReport` objects in request order;
        ``self.last_latencies`` holds the worker-measured per-request
        solve seconds of the batch.
        """
        reqs = [
            r if isinstance(r, SolveRequest) else SolveRequest.from_json(r)
            for r in requests
        ]
        n = len(reqs)
        if n == 0:
            self.last_latencies = []
            return []
        if isinstance(instances, AllocationInstance):
            per_request = [instances] * n
        else:
            per_request = list(instances)
            if len(per_request) != n:
                raise ValueError(
                    f"got {len(per_request)} instances for {n} requests; pass "
                    "one instance (shared) or exactly one per request"
                )
        streams = spawn(seed, n)
        seeded = [
            req if req.seed is not None else replace(req, seed=streams[i])
            for i, req in enumerate(reqs)
        ]

        # Group by content hash, preserving position order per group.
        groups: dict[str, list[tuple[int, SolveRequest]]] = {}
        for i, inst in enumerate(per_request):
            content = self.publish(inst)
            groups.setdefault(content, []).append((i, seeded[i]))

        self._ensure_workers()
        self._batch_seq += 1
        seq = self._batch_seq
        outstanding: dict[int, set[int]] = {i: set() for i in range(self.workers)}
        for content, items in groups.items():
            shard = int(content, 16) % self.workers
            descriptor = self._descriptor_for(shard, content)
            self._task_queues[shard].put(
                ("batch", seq, content, descriptor, items, prime)
            )
            outstanding[shard].update(pos for pos, _ in items)

        payloads: dict[int, str] = {}
        latencies: list[Optional[float]] = [None] * n
        deadline = None if timeout is None else time.monotonic() + timeout
        while len(payloads) < n:
            try:
                msg = self._result_queue.get(timeout=_POLL_SECONDS)
            except queue_mod.Empty:
                if deadline is not None and time.monotonic() > deadline:
                    raise TimeoutError(
                        f"sharded batch timed out with {n - len(payloads)} "
                        "results outstanding"
                    )
                self._check_liveness(outstanding)
                continue
            kind = msg[0]
            if kind == "ok" and msg[1] == seq:
                _, _, worker, pos, report_json, elapsed = msg
                payloads[pos] = report_json
                latencies[pos] = elapsed
                outstanding[worker].discard(pos)
            elif kind == "batch_err" and msg[1] == seq:
                _, _, worker, positions, tb = msg
                raise RuntimeError(
                    f"shard worker {worker} failed on positions {positions}:\n{tb}"
                )
            # Anything else is a stale response: a batch that raised
            # (worker death, batch_err) can leave other shards'
            # messages queued, and their positions would collide with
            # this batch's.  The sequence tag keeps them apart.
        from repro.api.report import AllocationReport

        self.last_latencies = latencies
        return [AllocationReport.from_json(payloads[i]) for i in range(n)]

    def _check_liveness(self, outstanding: dict[int, set[int]]) -> None:
        for i, proc in enumerate(self._procs):
            if proc is not None and not proc.is_alive() and outstanding[i]:
                lost = sorted(outstanding[i])
                # Mark dead so the next batch respawns (warm state
                # survives in the shared exponent segments).
                proc.join(timeout=1.0)
                self._procs[i] = None
                self.restarts += 1
                raise RuntimeError(
                    f"shard worker {i} died (exitcode {proc.exitcode}) with "
                    f"positions {lost} in flight; resubmit the batch — the "
                    "executor respawns the shard and recovers warm state "
                    "from shared memory"
                )

    # -- dynamic replay ----------------------------------------------------
    def run_replay(
        self,
        instance: AllocationInstance,
        deltas: Sequence[Any],
        *,
        seed=None,
        requests: Optional[Sequence[Optional[SolveRequest]]] = None,
        prime: bool = True,
        timeout: Optional[float] = None,
    ) -> ShardReplayResult:
        """Replay a delta stream on the instance's shard (one worker —
        a delta chain is sequential by nature; the fleet's parallelism
        is across *streams*).  Mirrors ``Engine.stream`` semantics:
        bit-identical rows and reports to the in-process replay for the
        same ``(instance, deltas, seed)``."""
        deltas = list(deltas)
        content = self.publish(instance)
        self._ensure_workers()
        shard = int(content, 16) % self.workers
        self._replay_token += 1
        token = self._replay_token
        descriptor = self._descriptor_for(shard, content)
        self._task_queues[shard].put(
            ("replay", token, content, descriptor, deltas,
             None if requests is None else list(requests), seed, prime)
        )
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            try:
                msg = self._result_queue.get(timeout=_POLL_SECONDS)
            except queue_mod.Empty:
                if deadline is not None and time.monotonic() > deadline:
                    raise TimeoutError("sharded replay timed out")
                self._check_liveness({shard: {-1}, **{
                    i: set() for i in range(self.workers) if i != shard
                }})
                continue
            kind = msg[0]
            if kind == "replay_ok" and msg[2] == token:
                from repro.api.report import AllocationReport

                payload = msg[3]
                return ShardReplayResult(
                    prime=None if payload["prime"] is None
                    else AllocationReport.from_json(payload["prime"]),
                    rows=tuple(payload["rows"]),
                    reports=tuple(
                        AllocationReport.from_json(r) for r in payload["reports"]
                    ),
                    stats=dict(payload["stats"]),
                )
            if kind == "replay_err" and msg[2] == token:
                raise RuntimeError(
                    f"shard worker {msg[1]} failed replaying the stream:\n{msg[3]}"
                )

    # -- introspection -----------------------------------------------------
    def stats(self, *, timeout: float = 10.0) -> dict[str, Any]:
        """Aggregated fleet statistics: per-worker counters and
        per-instance session stats, plus dispatcher-side restart and
        publication counts."""
        self._ensure_workers()
        for q in self._task_queues:
            q.put(("stats",))
        collected: dict[int, dict] = {}
        deadline = time.monotonic() + timeout
        while len(collected) < self.workers and time.monotonic() < deadline:
            try:
                msg = self._result_queue.get(timeout=_POLL_SECONDS)
            except queue_mod.Empty:
                continue
            if msg[0] == "stats":
                collected[msg[1]] = msg[2]
        return {
            "workers": self.workers,
            "restarts": self.restarts,
            "published_instances": len(self._shared),
            "shards": {str(i): collected.get(i) for i in range(self.workers)},
        }
