"""Shared-memory instance workspaces for sharded serving (DESIGN.md §12).

The process-pool serving layer (:mod:`repro.serve.sharding`) must hand
each shard worker the instance it serves *without* pickling O(edges)
arrays per request or rebuilding :class:`~repro.kernels.RoundWorkspace`
layouts per process.  This module is the one-sided-communication
discipline for that: the dispatcher *publishes* an instance once —
every CSR array, the capacities, **and** the derived per-side layout
invariants (degrees, slot-owner gather indices, non-empty masks,
``reduceat`` offsets) — packed into a single named
:class:`multiprocessing.shared_memory.SharedMemory` segment, and
workers *attach* by name, reconstructing a zero-copy
:class:`~repro.graphs.instances.AllocationInstance` whose arrays are
read-only views over the segment, with the kernel workspace assembled
via :func:`repro.kernels.attach_workspace` instead of re-derived.

A second, small, *mutable* segment per instance holds the retained
converged β exponent vector behind a two-slot commit-sequence
protocol: the owning shard writes each new vector into the *inactive*
slot, publishing a ``begin`` sequence before the data and the matching
``committed`` sequence after it, and a worker (re)building the session
— including one respawned after a crash — primes its warm state from
the committed slot.  A writer that dies mid-commit therefore never
corrupts the committed vector: the torn attempt is confined to the
inactive slot, detected by ``begin != committed``, and the previous
version is used (DESIGN.md §12).  Warmth survives worker restarts
without any request replay.

Ownership: the publishing process (the dispatcher) owns both segments
and is the only one that ever unlinks them
(:meth:`SharedInstance.unlink`, called by
``ShardedExecutor.close()``).  Workers only ever attach and close.

Routing keys off :func:`instance_hash`: a stable content hash of the
instance (structure + capacities), so the same instance always lands
on the same shard and finds its warm session — the "same instance →
same shard → warm hit" rule.
"""

from __future__ import annotations

import hashlib
import os
import secrets
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Optional

import numpy as np

from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.instances import AllocationInstance
from repro.kernels import RoundWorkspace, SegmentLayout, attach_workspace

__all__ = [
    "instance_hash",
    "ArraySpec",
    "SharedInstanceDescriptor",
    "SharedInstance",
    "AttachedInstance",
    "attach_instance",
]

_ALIGN = 16  # byte alignment of every packed array

# Exponent-segment layout (all int64 words): a two-word header
# ``[committed_seq, begin_seq]`` followed by two full β-vector slots.
# Slot ``seq % 2`` holds the vector committed at sequence ``seq``; the
# other slot is the write target of the *next* commit, so an
# interrupted write never touches committed data.
EXP_HEADER_WORDS = 2

# The instance arrays packed into the segment, in order.  Graph arrays
# come straight off the BipartiteGraph; *_deg/_owner/_nonempty/_starts
# are the SegmentLayout invariants the attach side adopts instead of
# re-deriving (DESIGN.md §6 lists what each one replaces).
_GRAPH_FIELDS = (
    "edge_u",
    "edge_v",
    "left_indptr",
    "left_adj",
    "left_edge",
    "right_indptr",
    "right_adj",
    "right_edge",
)


def instance_hash(instance: AllocationInstance) -> str:
    """Stable content hash of an instance (hex sha256).

    Covers everything that changes what a solve computes: the vertex
    counts, the canonical edge arrays, and the capacity vector.  The
    display ``name`` and free-form ``metadata`` are deliberately
    excluded — two instances with identical structure and capacities
    are the *same* serving target and must route to the same shard.
    """
    g = instance.graph
    h = hashlib.sha256()
    h.update(f"repro-instance-v1:{g.n_left}:{g.n_right}:{g.n_edges}".encode())
    for arr in (g.edge_u, g.edge_v, instance.capacities):
        a = np.ascontiguousarray(arr)
        h.update(a.dtype.str.encode())
        h.update(a.tobytes())
    return h.hexdigest()


@dataclass(frozen=True)
class ArraySpec:
    """Location of one packed array inside the shared segment."""

    field: str
    dtype: str
    shape: tuple[int, ...]
    offset: int


@dataclass(frozen=True)
class SharedInstanceDescriptor:
    """Everything a worker needs to attach: plain picklable metadata.

    Travels over the task queue once per (instance, worker); the heavy
    arrays never do.
    """

    segment: str
    exponents_segment: str
    content_hash: str
    n_left: int
    n_right: int
    arrays: tuple[ArraySpec, ...]
    name: str
    arboricity_upper_bound: Optional[int]
    metadata: dict[str, Any]


def _commit_info(exp_shm: shared_memory.SharedMemory) -> dict[str, Any]:
    header = np.ndarray((EXP_HEADER_WORDS,), dtype=np.int64, buffer=exp_shm.buf)
    committed, begin = int(header[0]), int(header[1])
    return {
        "committed": committed,
        "begin": begin,
        "torn": begin != committed,
    }


def _read_exponent_segment(
    exp_shm: shared_memory.SharedMemory, n_right: int
) -> tuple[int, Optional[np.ndarray], bool]:
    """``(committed_seq, β copy or None, torn)`` from the two-slot
    segment.  Only the committed slot is ever read; a half-written
    commit (writer died between ``begin`` and ``committed``) lives in
    the other slot and is reported via ``torn``."""
    header = np.ndarray((EXP_HEADER_WORDS,), dtype=np.int64, buffer=exp_shm.buf)
    committed, begin = int(header[0]), int(header[1])
    if committed <= 0:
        return committed, None, begin != committed
    vec = np.ndarray(
        (n_right,), dtype=np.int64, buffer=exp_shm.buf,
        offset=8 * (EXP_HEADER_WORDS + (committed % 2) * n_right),
    )
    return committed, vec.copy(), begin != committed


def _pack_layout(prefix: str, layout: SegmentLayout) -> list[tuple[str, np.ndarray]]:
    return [
        (f"{prefix}_deg", layout.degrees),
        (f"{prefix}_owner", layout.slot_owner),
        (f"{prefix}_nonempty", layout.nonempty),
        (f"{prefix}_starts", layout.reduce_starts),
    ]


class SharedInstance:
    """Owner-side handle: the published segments of one instance.

    Create with :meth:`publish`; the owner must eventually call
    :meth:`unlink` (closing implies nothing for other processes —
    unlink is what frees ``/dev/shm``).
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        exp_shm: shared_memory.SharedMemory,
        descriptor: SharedInstanceDescriptor,
    ):
        self._shm = shm
        self._exp_shm = exp_shm
        self.descriptor = descriptor

    @classmethod
    def publish(
        cls, instance: AllocationInstance, *, prefix: str = "repro"
    ) -> "SharedInstance":
        """Pack ``instance`` (arrays + layout invariants) into fresh
        shared-memory segments and return the owning handle.

        Segment names carry a random suffix, so concurrent executors —
        or a fresh executor after a crash left stale segments — never
        collide or inherit another fleet's state.
        """
        g = instance.graph
        content = instance_hash(instance)
        arrays: list[tuple[str, np.ndarray]] = [
            (field, getattr(g, field)) for field in _GRAPH_FIELDS
        ]
        arrays.append(("capacities", instance.capacities))
        arrays.extend(_pack_layout("left", g.left_layout))
        arrays.extend(_pack_layout("right", g.right_layout))

        specs: list[ArraySpec] = []
        offset = 0
        for field, arr in arrays:
            arr = np.ascontiguousarray(arr)
            offset = (offset + _ALIGN - 1) // _ALIGN * _ALIGN
            specs.append(ArraySpec(field, arr.dtype.str, arr.shape, offset))
            offset += arr.nbytes
        token = secrets.token_hex(4)
        seg_name = f"{prefix}_{os.getpid()}_{token}_{content[:12]}"
        shm = shared_memory.SharedMemory(
            create=True, size=max(offset, 1), name=seg_name
        )
        for spec, (_, arr) in zip(specs, arrays):
            arr = np.ascontiguousarray(arr)
            dst = np.ndarray(
                spec.shape, dtype=np.dtype(spec.dtype),
                buffer=shm.buf, offset=spec.offset,
            )
            dst[...] = arr

        # Exponents segment: [committed_seq, begin_seq] header, then two
        # β-vector slots (one int64 per right vertex each).  committed
        # == 0 means "no warm state retained yet".
        exp_shm = shared_memory.SharedMemory(
            create=True,
            size=8 * (EXP_HEADER_WORDS + 2 * max(g.n_right, 1)),
            name=f"{seg_name}_exp",
        )
        np.ndarray((EXP_HEADER_WORDS,), dtype=np.int64, buffer=exp_shm.buf)[:] = 0

        descriptor = SharedInstanceDescriptor(
            segment=seg_name,
            exponents_segment=f"{seg_name}_exp",
            content_hash=content,
            n_left=g.n_left,
            n_right=g.n_right,
            arrays=tuple(specs),
            name=instance.name,
            arboricity_upper_bound=instance.arboricity_upper_bound,
            metadata=dict(instance.metadata),
        )
        return cls(shm, exp_shm, descriptor)

    # -- owner-side warm-state introspection ----------------------------
    def exponents(self) -> tuple[int, Optional[np.ndarray]]:
        """``(version, β vector copy)`` — ``(0, None)`` before the
        owning shard's first committed batch.  Reads the *committed*
        slot, so a writer that died mid-commit is invisible here."""
        version, vec, _ = _read_exponent_segment(
            self._exp_shm, self.descriptor.n_right
        )
        return version, vec

    def commit_info(self) -> dict[str, Any]:
        """Commit-protocol state: ``{"committed", "begin", "torn"}``.
        ``torn`` is true when a writer published a ``begin`` sequence
        and died before the matching commit."""
        return _commit_info(self._exp_shm)

    def close(self) -> None:
        for shm in (self._shm, self._exp_shm):
            try:
                shm.close()
            except BufferError:  # pragma: no cover - exported views alive
                pass

    def unlink(self) -> None:
        """Free the segments (owner only; idempotent)."""
        for shm in (self._shm, self._exp_shm):
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
        self.close()


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment *without* adopting ownership.

    On Python < 3.13 ``SharedMemory(name=...)`` registers the segment
    with the resource tracker even for a pure attach, which (a) would
    unlink the dispatcher's segment when a worker exits and (b) — with
    the fork start method, where every process shares one tracker —
    clobbers the *publisher's* legitimate registration the moment any
    attacher unregisters.  Suppressing registration for the duration of
    the attach restores the documented ownership rule: only the
    publisher registers, only the publisher unlinks.
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original  # type: ignore[assignment]


class AttachedInstance:
    """Worker-side handle: a zero-copy instance over shared segments.

    ``instance`` is a fully functional
    :class:`~repro.graphs.instances.AllocationInstance`: its graph
    arrays are read-only views into the shared segment, its
    :class:`~repro.kernels.RoundWorkspace` is attached from the
    published layout invariants (no re-derivation), and the usual
    session machinery runs on it unchanged.  Keep the handle alive as
    long as the instance is in use — it pins the mapping.
    """

    def __init__(self, descriptor: SharedInstanceDescriptor):
        self.descriptor = descriptor
        self._shm = _attach_segment(descriptor.segment)
        self._exp_shm = _attach_segment(descriptor.exponents_segment)

        views: dict[str, np.ndarray] = {}
        for spec in descriptor.arrays:
            view = np.ndarray(
                spec.shape, dtype=np.dtype(spec.dtype),
                buffer=self._shm.buf, offset=spec.offset,
            )
            view.setflags(write=False)
            views[spec.field] = view

        graph = BipartiteGraph(
            n_left=descriptor.n_left,
            n_right=descriptor.n_right,
            **{field: views[field] for field in _GRAPH_FIELDS},
        )
        left = SegmentLayout.from_invariants(
            graph.left_indptr,
            degrees=views["left_deg"],
            slot_owner=views["left_owner"],
            nonempty=views["left_nonempty"],
            reduce_starts=views["left_starts"],
        )
        right = SegmentLayout.from_invariants(
            graph.right_indptr,
            degrees=views["right_deg"],
            slot_owner=views["right_owner"],
            nonempty=views["right_nonempty"],
            reduce_starts=views["right_starts"],
        )
        self.workspace: RoundWorkspace = attach_workspace(graph, left, right)
        self.instance = AllocationInstance(
            graph=graph,
            capacities=views["capacities"],
            arboricity_upper_bound=descriptor.arboricity_upper_bound,
            name=descriptor.name,
            metadata=dict(descriptor.metadata),
        )

    # -- warm-state handoff ---------------------------------------------
    def load_exponents(self) -> Optional[np.ndarray]:
        """The retained committed β vector (copy), or ``None`` when no
        batch has committed yet.  A commit interrupted by the writer's
        death (``begin != committed``) only ever touched the inactive
        slot, so this returns the previous committed version intact."""
        _, vec, _ = _read_exponent_segment(self._exp_shm, self.descriptor.n_right)
        return vec

    def commit_info(self) -> dict[str, Any]:
        """Commit-protocol state (see :meth:`SharedInstance.commit_info`)."""
        return _commit_info(self._exp_shm)

    def store_exponents(self, exponents: np.ndarray) -> None:
        """Publish the converged β vector under the two-slot commit
        protocol: ``begin_seq`` first, then the vector into the
        *inactive* slot, then ``committed_seq`` — so a reader never
        sees a torn vector and a mid-commit death never corrupts the
        previously committed one."""
        vec = np.asarray(exponents, dtype=np.int64)
        if vec.shape != (self.descriptor.n_right,):
            raise ValueError(
                f"exponents must have shape ({self.descriptor.n_right},), "
                f"got {vec.shape}"
            )
        n_right = self.descriptor.n_right
        header = np.ndarray(
            (EXP_HEADER_WORDS,), dtype=np.int64, buffer=self._exp_shm.buf
        )
        seq = int(header[0]) + 1
        header[1] = seq  # begin marker: a commit is in flight
        dst = np.ndarray(
            (n_right,), dtype=np.int64, buffer=self._exp_shm.buf,
            offset=8 * (EXP_HEADER_WORDS + (seq % 2) * n_right),
        )
        dst[...] = vec
        header[0] = seq  # commit: the new slot becomes the active one

    def close(self) -> None:
        """Release the worker's mapping (never unlinks)."""
        for shm in (self._shm, self._exp_shm):
            try:
                shm.close()
            except BufferError:  # pragma: no cover - views still exported
                pass


def attach_instance(descriptor: SharedInstanceDescriptor) -> AttachedInstance:
    """Attach to a published instance by descriptor (worker side)."""
    return AttachedInstance(descriptor)
