"""Thread-parallel batch execution over resident sessions (DESIGN.md §8).

``solve_batch`` runs a list of :class:`~repro.serve.SolveRequest`
objects across one or more :class:`~repro.serve.AllocationSession`
instances on a thread pool.  NumPy kernels release the GIL, so the
heavy per-request work (round kernels, sorting, sampling) genuinely
overlaps; the per-graph workspaces are thread-safe by construction
(immutable invariants + thread-local scratch, DESIGN.md §6.4).

Batch determinism rule (the ``solve_allocation_many`` contract,
extended):

* Seeds are spawned per batch *position*: request ``i`` with
  ``seed=None`` receives ``spawn(seed, n)[i]``; an explicit per-request
  seed wins.  Results therefore depend on the request order, never on
  thread scheduling.
* Warm starts are taken from a *snapshot* of each session's exponents
  at batch entry, so every request in the batch warm-starts from the
  same state regardless of completion order.
* Each session's warm state is committed once, after the batch, from
  the highest-position request that targeted it — again a pure
  function of the request list.

Consequently ``solve_batch(sessions, requests, seed=s)`` is
bit-identical to the serial loop over ``solve_detached`` with the same
spawned seeds — a property the test suite asserts with
``max_workers=1`` vs ``max_workers=4``.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from typing import Optional, Sequence, Union

from repro.core.pipeline import PipelineResult
from repro.serve.session import AllocationSession, SolveRequest
from repro.utils.rng import spawn

__all__ = ["solve_batch", "solve_stream"]

SessionsLike = Union[AllocationSession, Sequence[AllocationSession]]


def _resolve_sessions(
    sessions: SessionsLike, n_requests: int
) -> list[AllocationSession]:
    if isinstance(sessions, AllocationSession):
        return [sessions] * n_requests
    sessions = list(sessions)
    if len(sessions) != n_requests:
        raise ValueError(
            f"got {len(sessions)} sessions for {n_requests} requests; pass one "
            "session (shared) or exactly one per request"
        )
    return sessions


def solve_batch(
    sessions: SessionsLike,
    requests: Sequence[SolveRequest],
    *,
    seed=None,
    max_workers: Optional[int] = None,
    commit: bool = True,
) -> list[PipelineResult]:
    """Solve ``requests`` thread-parallel across sessions.

    ``sessions`` is either one session shared by every request (the
    one-resident-graph serving shape) or a sequence aligned with
    ``requests`` (multi-tenant: each request names its session; the
    same session object may appear many times).  Results are returned
    in request order.  See the module docstring for the determinism
    rule; ``commit=False`` leaves every session's warm state untouched
    (a read-only batch).
    """
    requests = list(requests)
    if not requests:
        return []
    per_request = _resolve_sessions(sessions, len(requests))
    streams = spawn(seed, len(requests))

    # Snapshot warm bases once, per distinct session, at batch entry.
    snapshots: dict[int, object] = {}
    for session in per_request:
        key = id(session)
        if key not in snapshots:
            snapshots[key] = session.exponents_snapshot()

    def run_one(i: int) -> PipelineResult:
        session = per_request[i]
        request = requests[i]
        if request.seed is None:
            request = replace(request, seed=streams[i])
        initial = snapshots[id(session)] if request.warm else None
        return session.solve_detached(request, initial_exponents=initial)

    if max_workers is None:
        max_workers = min(len(requests), max(1, (os.cpu_count() or 2) - 1))
    if max_workers <= 1:
        results = [run_one(i) for i in range(len(requests))]
    else:
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            results = list(pool.map(run_one, range(len(requests))))

    if commit:
        # Highest-position request per session commits its exponents —
        # deterministic in the request list, independent of scheduling.
        last_by_session: dict[int, tuple[AllocationSession, int]] = {}
        for i, session in enumerate(per_request):
            last_by_session[id(session)] = (session, i)
        for session, i in last_by_session.values():
            session.commit(results[i])
    return results


def solve_stream(
    session: AllocationSession,
    requests: Sequence[SolveRequest],
    *,
    seed=None,
    max_workers: Optional[int] = None,
) -> list[PipelineResult]:
    """Serve a request stream on one session: prime, then batch warm.

    The common CLI/benchmark shape for a *fresh* session: the stream's
    first request runs serially through :meth:`AllocationSession.solve`
    (establishing the warm state a fresh session lacks — a plain
    :func:`solve_batch` would snapshot ``None`` and run everything
    cold), and the remainder runs through :func:`solve_batch`
    warm-started from it.  Seeds follow the batch determinism rule
    over the *whole* stream: request ``i`` with no explicit seed
    receives ``spawn(seed, n)[i]``.
    """
    requests = list(requests)
    if not requests:
        return []
    streams = spawn(seed, len(requests))
    first = requests[0]
    if first.seed is None:
        first = replace(first, seed=streams[0])
    results = [session.solve(first)]
    rest = [
        req if req.seed is not None else replace(req, seed=stream)
        for req, stream in zip(requests[1:], streams[1:])
    ]
    results.extend(solve_batch(session, rest, max_workers=max_workers))
    return results
