"""The resumable sweep runner: one JSON record per cell, on disk.

Layout under the manifest directory::

    <out>/manifest.json        — spec + expanded cell ids (written first)
    <out>/cells/<cell_id>.json — one deterministic record per cell
    <out>/timings.jsonl        — wall-clock per run (appended, non-deterministic)

Resume is skip-if-present: a record whose file exists is never re-run,
so a sweep killed mid-grid (even SIGKILL) picks up exactly where it
stopped — records are written atomically (tmp + ``os.replace``), so a
partial file can never be mistaken for a finished cell.  Records
contain only deterministic fields (axes + solve outcome); wall-clock
timing goes to ``timings.jsonl`` so an interrupted-and-resumed sweep
produces cell records *byte-identical* to an uninterrupted one.

``executor="process"`` fans cells out through the existing
multi-process shard machinery (:class:`repro.serve.ShardedExecutor`
via ``Engine.batch``): cells are grouped by solver config, each group
is served as a batch of cold ``SolveRequest``s, and the per-request
bit-identity contract (cold ``warm=False`` solve ≡ ``Engine.solve``)
keeps process-produced records identical to inline ones.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Optional

from repro.sweeps.spec import CELL_SCHEMA, SweepCell, SweepSpec

__all__ = ["run_sweep", "SweepRunResult", "record_path", "load_manifest"]

MANIFEST_SCHEMA = "repro.sweeps/manifest/v1"

# The deterministic solve-outcome fields every cell record carries.
# Chosen so the inline and process paths agree bit-for-bit (both are
# backed by the same cold-solve contract); timing never appears here.
_RESULT_FIELDS = (
    "size", "match_weight", "local_rounds", "mpc_rounds",
    "certified", "guarantee",
)


@dataclass(frozen=True)
class SweepRunResult:
    """What a :func:`run_sweep` call did (not the sweep's contents)."""

    out_dir: Path
    total_cells: int
    ran: int
    skipped: int

    @property
    def complete(self) -> bool:
        return self.ran + self.skipped == self.total_cells


def record_path(out_dir: Path | str, cell_id: str) -> Path:
    return Path(out_dir) / "cells" / f"{cell_id}.json"


def _atomic_write(path: Path, text: str) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


def _dump(payload: dict[str, Any]) -> str:
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"


def load_manifest(out_dir: Path | str) -> dict[str, Any]:
    path = Path(out_dir) / "manifest.json"
    payload = json.loads(path.read_text())
    if payload.get("schema") != MANIFEST_SCHEMA:
        raise ValueError(f"unknown manifest schema {payload.get('schema')!r}")
    return payload


def _cell_record(cell: SweepCell, report) -> dict[str, Any]:
    result = {}
    for name in _RESULT_FIELDS:
        value = getattr(report, name)
        result[name] = None if value is None else json.loads(json.dumps(value))
    return {
        "schema": CELL_SCHEMA,
        "cell_id": cell.cell_id,
        "cell": cell.axes(),
        "result": result,
    }


def _run_cell_inline(cell: SweepCell):
    from repro.api import Engine

    engine = Engine(cell.solver_config())
    return engine.solve(cell.build_instance(), seed=cell.seed)


def _run_group_process(
    cells: list[SweepCell], workers: Optional[int]
) -> list[Any]:
    from repro.api import Engine
    from repro.serve.session import SolveRequest

    config = cells[0].solver_config().replace(
        executor="process", shard_workers=workers
    )
    engine = Engine(config)
    instances = [cell.build_instance() for cell in cells]
    requests = [
        SolveRequest(epsilon=cell.epsilon, seed=cell.seed, warm=False)
        for cell in cells
    ]
    return engine.batch(instances, requests, prime=False, executor="process")


def run_sweep(
    spec: SweepSpec,
    out_dir: Path | str,
    *,
    executor: str = "inline",
    workers: Optional[int] = None,
    echo: Optional[Callable[[str], None]] = None,
) -> SweepRunResult:
    """Execute (or resume) ``spec`` under ``out_dir``.

    ``executor`` is ``"inline"`` (each cell solved in-process through
    its own :class:`~repro.api.Engine`) or ``"process"`` (cells
    grouped by solver config and fanned out through the shard fleet).
    Re-invoking on a directory that already holds a *different* spec's
    manifest raises rather than silently mixing grids.
    """
    if executor not in ("inline", "process"):
        raise ValueError(
            f"executor must be 'inline' or 'process', got {executor!r}"
        )
    out = Path(out_dir)
    cells_dir = out / "cells"
    cells_dir.mkdir(parents=True, exist_ok=True)
    cells = spec.expand()

    manifest_path = out / "manifest.json"
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "spec": spec.to_dict(),
        "cell_ids": [cell.cell_id for cell in cells],
    }
    if manifest_path.exists():
        existing = load_manifest(out)
        if existing["spec"] != manifest["spec"]:
            raise ValueError(
                f"{manifest_path} already holds a different spec "
                f"({existing['spec'].get('name')!r}); refusing to mix grids"
            )
    else:
        _atomic_write(manifest_path, _dump(manifest))

    say = echo or (lambda _msg: None)
    pending = [c for c in cells if not record_path(out, c.cell_id).exists()]
    skipped = len(cells) - len(pending)
    if skipped:
        say(f"resume: {skipped}/{len(cells)} cells already recorded")

    def finish(cell: SweepCell, report, seconds: float, mode: str) -> None:
        _atomic_write(
            record_path(out, cell.cell_id), _dump(_cell_record(cell, report))
        )
        with (out / "timings.jsonl").open("a") as fh:
            fh.write(json.dumps({
                "cell_id": cell.cell_id, "seconds": seconds, "executor": mode,
            }) + "\n")

    if executor == "inline":
        for cell in pending:
            t0 = time.perf_counter()
            report = _run_cell_inline(cell)
            finish(cell, report, time.perf_counter() - t0, "inline")
            say(f"ran {cell.cell_id} ({cell.family}, n={cell.n})")
    else:
        groups: dict[tuple, list[SweepCell]] = {}
        for cell in pending:
            groups.setdefault(cell.config, []).append(cell)
        for config, group in groups.items():
            t0 = time.perf_counter()
            reports = _run_group_process(group, workers)
            seconds = time.perf_counter() - t0
            for cell, report in zip(group, reports):
                finish(cell, report, seconds / len(group), "process")
            say(f"ran {len(group)} cells for config {dict(config)!r}")

    return SweepRunResult(
        out_dir=out,
        total_cells=len(cells),
        ran=len(pending),
        skipped=skipped,
    )
