"""Plot stage: matplotlib-free plot data from sweep records.

Emits (1) a JSON payload — per-series sorted ``(x, y)`` points, ready
for any external plotting tool — and (2) an ASCII chart so CI logs and
terminals can see the shape without a display server.  Both are pure
functions of the extract stage's records: no solver, no files written
unless the caller asks.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from repro.sweeps.extract import axis_value

__all__ = ["series_points", "plot_payload", "ascii_chart"]

PLOT_SCHEMA = "repro.sweeps/plot/v1"

_MARKERS = "ox+*#@%&"


def series_points(
    records: list[dict[str, Any]],
    *,
    x: str = "n",
    y: str = "local_rounds",
    group: Optional[str] = "family",
) -> dict[str, list[list[float]]]:
    """``{series_label: [[x, y], …]}`` with points sorted by x.

    ``group=None`` produces a single series named after ``y``.  Points
    sharing an x within a series are averaged (the extract stage's
    ``mean`` convention).
    """
    buckets: dict[str, dict[float, list[float]]] = {}
    for record in records:
        label = str(axis_value(record, group)) if group else y
        xv = float(axis_value(record, x))
        yv = axis_value(record, y)
        if yv is None:
            continue
        buckets.setdefault(label, {}).setdefault(xv, []).append(float(yv))
    out: dict[str, list[list[float]]] = {}
    for label in sorted(buckets):
        pts = [
            [xv, sum(ys) / len(ys)] for xv, ys in sorted(buckets[label].items())
        ]
        out[label] = pts
    return out


def plot_payload(
    records: list[dict[str, Any]],
    *,
    x: str = "n",
    y: str = "local_rounds",
    group: Optional[str] = "family",
) -> dict[str, Any]:
    """The schema-versioned JSON plot payload for ``records``."""
    return {
        "schema": PLOT_SCHEMA,
        "x": x,
        "y": y,
        "group": group,
        "series": series_points(records, x=x, y=y, group=group),
    }


def ascii_chart(
    payload: dict[str, Any], *, width: int = 64, height: int = 16
) -> str:
    """Render a plot payload as an ASCII scatter chart with a legend."""
    if payload.get("schema") != PLOT_SCHEMA:
        raise ValueError(f"unknown plot schema {payload.get('schema')!r}")
    series = payload["series"]
    points = [(pt[0], pt[1]) for pts in series.values() for pt in pts]
    if not points:
        return "(no data)\n"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    legend = []
    for idx, (label, pts) in enumerate(series.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        legend.append(f"  {marker} {label}")
        for xv, yv in pts:
            col = int(round((xv - x_lo) / x_span * (width - 1)))
            row = int(round((yv - y_lo) / y_span * (height - 1)))
            grid[height - 1 - row][col] = marker
    lines = [f"{payload['y']} vs {payload['x']}"]
    lines.append(f"{y_hi:g} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append("      │".rjust(8) + "".join(row))
    lines.append(f"{y_lo:g} ┤".rjust(8) + "".join(grid[-1]))
    lines.append("      └" + "─" * width)
    lines.append(f"       {x_lo:g}".ljust(width // 2 + 7) + f"{x_hi:g}")
    lines.extend(legend)
    return "\n".join(lines) + "\n"


def dumps(payload: dict[str, Any]) -> str:
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"
