"""Declarative sweep grids over solver configs × instance axes.

A :class:`SweepSpec` is the sweep analogue of
:class:`repro.api.SolverConfig`: a frozen, validated description of a
parameter grid.  The instance axes (generator family, target size n,
epsilon, seed) cross with ``config_axes`` — lists of values for any
other :class:`SolverConfig` field (backend, substrate, mode, budget
policy, executor, …) — and :meth:`SweepSpec.expand` materialises the
product as frozen :class:`SweepCell` rows.

Cell identity is *content*-addressed: :attr:`SweepCell.cell_id` is a
sha256 prefix over the canonical JSON of the cell's axes, so the same
point in parameter space has the same id in every sweep that contains
it — renaming a spec, reordering its axes, or adding new axes values
never invalidates previously computed records.  The resumable runner
(:mod:`repro.sweeps.runner`) keys its on-disk records by these ids.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass
from typing import Any, Mapping

from repro.graphs.generators import SIZED_FAMILIES

__all__ = ["SweepSpec", "SweepCell", "SPEC_SCHEMA", "CELL_SCHEMA"]

SPEC_SCHEMA = "repro.sweeps/SweepSpec/v1"
CELL_SCHEMA = "repro.sweeps/cell/v1"

# Instance axes are spelled as dedicated spec fields; everything else
# routes through config_axes and must name a real SolverConfig field.
_RESERVED_CONFIG_FIELDS = frozenset({"epsilon", "seed"})


def _solver_config_fields() -> frozenset[str]:
    import dataclasses

    from repro.api.config import SolverConfig

    return frozenset(f.name for f in dataclasses.fields(SolverConfig))


def _canonical(value: Any) -> Any:
    """JSON-roundtrip a value so hashing sees what the record will hold."""
    return json.loads(json.dumps(value))


@dataclass(frozen=True)
class SweepCell:
    """One frozen point of the grid: instance axes + solver overrides.

    ``config`` is a sorted tuple of ``(field, value)`` pairs — the
    merged ``base_config`` + per-axis values — kept hashable so cells
    can live in sets and dict keys.
    """

    family: str
    n: int
    epsilon: float
    seed: int
    config: tuple[tuple[str, Any], ...] = ()

    @property
    def cell_id(self) -> str:
        payload = json.dumps(self.axes(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def axes(self) -> dict[str, Any]:
        """The content that identifies this cell (and nothing else)."""
        return _canonical({
            "family": self.family,
            "n": self.n,
            "epsilon": self.epsilon,
            "seed": self.seed,
            "config": dict(self.config),
        })

    def solver_config(self):
        """The validated :class:`repro.api.SolverConfig` for this cell."""
        from repro.api.config import SolverConfig

        return SolverConfig(
            epsilon=self.epsilon, seed=self.seed, **dict(self.config)
        )

    def build_instance(self):
        """The cell's instance: ``sized_instance(family, n, seed)``."""
        from repro.graphs.generators import sized_instance

        return sized_instance(self.family, self.n, seed=self.seed)

    def to_dict(self) -> dict[str, Any]:
        return {"schema": CELL_SCHEMA, "cell_id": self.cell_id, **self.axes()}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SweepCell":
        schema = payload.get("schema", CELL_SCHEMA)
        if schema != CELL_SCHEMA:
            raise ValueError(f"unknown cell schema {schema!r}")
        cell = cls(
            family=str(payload["family"]),
            n=int(payload["n"]),
            epsilon=float(payload["epsilon"]),
            seed=int(payload["seed"]),
            config=tuple(sorted(dict(payload.get("config", {})).items())),
        )
        recorded = payload.get("cell_id")
        if recorded is not None and recorded != cell.cell_id:
            raise ValueError(
                f"cell_id mismatch: payload says {recorded!r}, "
                f"content hashes to {cell.cell_id!r}"
            )
        return cell


@dataclass(frozen=True)
class SweepSpec:
    """A validated grid: instance axes × SolverConfig axes.

    ``config_axes`` maps SolverConfig field names to the list of
    values to sweep; ``base_config`` holds fixed overrides applied to
    every cell (a per-axis value wins over a base value for the same
    field).  ``epsilon`` and ``seed`` are instance axes and may not
    appear in either mapping.
    """

    name: str
    families: tuple[str, ...]
    sizes: tuple[int, ...]
    epsilons: tuple[float, ...] = (0.2,)
    seeds: tuple[int, ...] = (0,)
    config_axes: tuple[tuple[str, tuple[Any, ...]], ...] = ()
    base_config: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self):
        if not self.name or not str(self.name).strip():
            raise ValueError("spec name must be non-empty")
        object.__setattr__(self, "families", tuple(str(f) for f in self.families))
        object.__setattr__(self, "sizes", tuple(int(n) for n in self.sizes))
        object.__setattr__(self, "epsilons", tuple(float(e) for e in self.epsilons))
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        object.__setattr__(
            self,
            "config_axes",
            tuple(
                (str(k), tuple(vs))
                for k, vs in (
                    self.config_axes.items()
                    if isinstance(self.config_axes, Mapping)
                    else self.config_axes
                )
            ),
        )
        object.__setattr__(
            self,
            "base_config",
            tuple(
                sorted(
                    (str(k), v)
                    for k, v in (
                        self.base_config.items()
                        if isinstance(self.base_config, Mapping)
                        else self.base_config
                    )
                )
            ),
        )
        if not self.families:
            raise ValueError("spec needs at least one family")
        if not self.sizes:
            raise ValueError("spec needs at least one size")
        if not self.epsilons:
            raise ValueError("spec needs at least one epsilon")
        if not self.seeds:
            raise ValueError("spec needs at least one seed")
        unknown = [f for f in self.families if f not in SIZED_FAMILIES]
        if unknown:
            raise ValueError(
                f"unknown families {unknown}; valid: "
                f"{', '.join(sorted(SIZED_FAMILIES))}"
            )
        for n in self.sizes:
            if n < 1:
                raise ValueError(f"sizes must be >= 1, got {n}")
        valid_fields = _solver_config_fields()
        seen: set[str] = set()
        for source in (dict(self.config_axes), dict(self.base_config)):
            for key in source:
                if key in _RESERVED_CONFIG_FIELDS:
                    raise ValueError(
                        f"{key!r} is an instance axis (epsilons=/seeds=), "
                        "not a config axis"
                    )
                if key not in valid_fields:
                    raise ValueError(
                        f"{key!r} is not a SolverConfig field; valid: "
                        f"{', '.join(sorted(valid_fields))}"
                    )
        for key, values in self.config_axes:
            if key in seen:
                raise ValueError(f"duplicate config axis {key!r}")
            seen.add(key)
            if not values:
                raise ValueError(f"config axis {key!r} has no values")

    @property
    def n_cells(self) -> int:
        total = (
            len(self.families) * len(self.sizes)
            * len(self.epsilons) * len(self.seeds)
        )
        for _, values in self.config_axes:
            total *= len(values)
        return total

    def expand(self) -> list[SweepCell]:
        """Every cell of the grid, in deterministic axis-major order.

        Each cell's :meth:`SweepCell.solver_config` is constructed once
        here, so an invalid combination (e.g. ``mpc_budget_policy=
        'adaptive'`` with ``mode='simulate'``) fails at expansion time
        with the config layer's own error, before anything runs.
        """
        axis_names = [k for k, _ in self.config_axes]
        axis_values = [vs for _, vs in self.config_axes]
        base = dict(self.base_config)
        cells: list[SweepCell] = []
        for family, n, epsilon, seed in itertools.product(
            self.families, self.sizes, self.epsilons, self.seeds
        ):
            for combo in itertools.product(*axis_values) if axis_values else [()]:
                merged = dict(base)
                merged.update(zip(axis_names, combo))
                cell = SweepCell(
                    family=family,
                    n=n,
                    epsilon=epsilon,
                    seed=seed,
                    config=tuple(sorted(merged.items())),
                )
                cell.solver_config()
                cells.append(cell)
        return cells

    def to_dict(self) -> dict[str, Any]:
        return _canonical({
            "schema": SPEC_SCHEMA,
            "name": self.name,
            "families": list(self.families),
            "sizes": list(self.sizes),
            "epsilons": list(self.epsilons),
            "seeds": list(self.seeds),
            "config_axes": {k: list(vs) for k, vs in self.config_axes},
            "base_config": dict(self.base_config),
        })

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SweepSpec":
        schema = payload.get("schema", SPEC_SCHEMA)
        if schema != SPEC_SCHEMA:
            raise ValueError(f"unknown sweep spec schema {schema!r}")
        return cls(
            name=str(payload["name"]),
            families=tuple(payload["families"]),
            sizes=tuple(payload["sizes"]),
            epsilons=tuple(payload.get("epsilons", (0.2,))),
            seeds=tuple(payload.get("seeds", (0,))),
            config_axes=tuple(
                (k, tuple(vs))
                for k, vs in dict(payload.get("config_axes", {})).items()
            ),
            base_config=tuple(
                sorted(dict(payload.get("base_config", {})).items())
            ),
        )

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        return cls.from_dict(json.loads(text))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"
