"""Extract stage: flatten sweep cell records into comparison tables.

Separated from running (the records are already on disk) and from
plotting (:mod:`repro.sweeps.plot_data`): extraction is a pure
function of the manifest directory, so it can re-run at any time,
over partial sweeps, without touching a solver.

The grid axes — ``family``, ``n``, ``epsilon``, ``seed``, plus every
swept SolverConfig field — index the records; any deterministic
result field (``local_rounds``, ``size``, ``match_weight``, …) is a
value.  :func:`comparison_table` pivots records into a
:class:`repro.utils.tables.Table` keyed by one row axis and one
column axis, aggregating duplicates.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Optional

from repro.sweeps.spec import CELL_SCHEMA
from repro.utils.tables import Table

__all__ = [
    "load_records",
    "flatten_record",
    "axis_value",
    "comparison_table",
]

_AGGREGATORS: dict[str, Callable[[list[float]], float]] = {
    "mean": lambda xs: sum(xs) / len(xs),
    "min": min,
    "max": max,
    "sum": sum,
}


def load_records(out_dir: Path | str) -> list[dict[str, Any]]:
    """Every cell record under ``out_dir``, sorted by cell id."""
    cells_dir = Path(out_dir) / "cells"
    if not cells_dir.is_dir():
        raise FileNotFoundError(f"no cells directory under {out_dir}")
    records = []
    for path in sorted(cells_dir.glob("*.json")):
        payload = json.loads(path.read_text())
        if payload.get("schema") != CELL_SCHEMA:
            raise ValueError(f"{path} has unknown schema {payload.get('schema')!r}")
        records.append(payload)
    return records


def flatten_record(record: dict[str, Any]) -> dict[str, Any]:
    """One flat row: instance axes + config fields + result fields."""
    cell = record["cell"]
    flat = {
        "cell_id": record["cell_id"],
        "family": cell["family"],
        "n": cell["n"],
        "epsilon": cell["epsilon"],
        "seed": cell["seed"],
    }
    flat.update(cell.get("config", {}))
    flat.update(record.get("result", {}))
    return flat


def axis_value(record: dict[str, Any], axis: str) -> Any:
    """Look ``axis`` up in a record: instance axis, config field, or
    result field — in that order."""
    flat = flatten_record(record)
    if axis not in flat:
        raise KeyError(
            f"axis {axis!r} not present; available: {', '.join(sorted(flat))}"
        )
    return flat[axis]


def _sort_key(value: Any):
    return (isinstance(value, str), value if not isinstance(value, str) else 0, str(value))


def comparison_table(
    records: list[dict[str, Any]],
    *,
    rows: str = "family",
    cols: str = "n",
    value: str = "local_rounds",
    agg: str = "mean",
    title: Optional[str] = None,
) -> Table:
    """Pivot records into a ``rows × cols`` table of ``value``.

    Cells holding several records (other axes varying) aggregate with
    ``agg`` (mean/min/max/sum); empty cells render as ``—``.
    """
    if agg not in _AGGREGATORS:
        raise ValueError(
            f"agg must be one of {', '.join(sorted(_AGGREGATORS))}, got {agg!r}"
        )
    if not records:
        raise ValueError("no records to tabulate")
    aggregate = _AGGREGATORS[agg]
    buckets: dict[tuple[Any, Any], list[float]] = {}
    row_values: list[Any] = []
    col_values: list[Any] = []
    for record in records:
        r = axis_value(record, rows)
        c = axis_value(record, cols)
        v = axis_value(record, value)
        if v is None:
            continue
        if r not in row_values:
            row_values.append(r)
        if c not in col_values:
            col_values.append(c)
        buckets.setdefault((r, c), []).append(float(v))
    row_values.sort(key=_sort_key)
    col_values.sort(key=_sort_key)
    table = Table(
        title or f"{value} by {rows} × {cols} ({agg})",
        columns=[rows] + [f"{cols}={c}" for c in col_values],
    )
    for r in row_values:
        row: dict[str, Any] = {rows: r}
        for c in col_values:
            xs = buckets.get((r, c))
            if xs is None:
                row[f"{cols}={c}"] = "—"
            else:
                out = aggregate(xs)
                row[f"{cols}={c}"] = int(out) if float(out).is_integer() else round(out, 4)
        table.add_row(**row)
    table.add_note(f"{len(records)} cell records, aggregated by {agg}")
    return table
