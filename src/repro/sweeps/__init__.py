"""Sweep orchestration: declarative grids, resumable runs, extract/plot.

The evaluation pipeline that turns the repo's one-shot experiments
into systematic studies (ROADMAP "experiment orchestration")::

    spec  = SweepSpec(name="backends", families=("slow_spread",),
                      sizes=(48, 96), config_axes={"backend": (None, "numpy")})
    run_sweep(spec, "out/backends")                  # resumable, per-cell records
    records = load_records("out/backends")           # extract stage
    print(comparison_table(records, rows="backend", cols="n").to_ascii())

CLI: ``python -m repro.cli sweep {run,cells,extract,plot}``.
"""

from repro.sweeps.extract import comparison_table, flatten_record, load_records
from repro.sweeps.plot_data import ascii_chart, plot_payload, series_points
from repro.sweeps.runner import SweepRunResult, load_manifest, record_path, run_sweep
from repro.sweeps.spec import CELL_SCHEMA, SPEC_SCHEMA, SweepCell, SweepSpec

__all__ = [
    "SweepSpec",
    "SweepCell",
    "SPEC_SCHEMA",
    "CELL_SCHEMA",
    "run_sweep",
    "SweepRunResult",
    "record_path",
    "load_manifest",
    "load_records",
    "flatten_record",
    "comparison_table",
    "series_points",
    "plot_payload",
    "ascii_chart",
]
