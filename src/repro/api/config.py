"""The one typed solver configuration (DESIGN.md §10).

Four PRs of growth configured solves through a different mix of kwargs
per entry point, two environment variables, and per-call stage
overrides.  :class:`SolverConfig` is the replacement: a frozen
dataclass that is the single source of truth for *how* to solve —
approximation target, kernel backend, MPC substrate, execution mode,
seed policy, and stage selection — validated eagerly against the
unified :mod:`repro.registry`, and JSON round-trippable under a
versioned schema so configurations travel with results.

Every field has the historical default, so ``SolverConfig()`` behaves
exactly like the bare entry points it replaces — the cold-path parity
tests in ``tests/test_api.py`` assert bit-identical outputs.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence

import numpy as np

from repro import registry
from repro.utils.validation import check_fraction, check_positive_int

__all__ = ["CONFIG_SCHEMA", "SolverConfig"]

CONFIG_SCHEMA = "repro.api/SolverConfig/v1"

_MODES = ("simulate", "faithful")
_BUDGET_POLICIES = ("fixed", "adaptive")
_BOOST_MODES = ("layered", "deterministic")
_EXECUTORS = ("thread", "process")


def _is_int(value: Any) -> bool:
    return isinstance(value, (int, np.integer)) and not isinstance(value, bool)


@dataclass(frozen=True)
class SolverConfig:
    """Frozen, validated solver configuration.

    Parameters
    ----------
    epsilon:
        The pipeline approximation parameter (ε ≤ 1/4, Theorem 17).
    backend:
        Kernel backend name (``repro.registry`` kind
        ``"kernel_backend"``); ``None`` leaves the process-active
        backend untouched.  Replaces ``REPRO_KERNEL_BACKEND`` /
        ``set_backend``.
    substrate:
        Faithful-mode MPC substrate name (kind ``"mpc_substrate"``);
        ``None`` leaves the active substrate untouched.  Replaces
        ``REPRO_MPC_SUBSTRATE`` / ``set_substrate``.
    mode:
        Fractional-solve validation mode: ``"simulate"`` (the scale
        path) or ``"faithful"`` (every communication step executed on
        an accounted cluster — DESIGN.md §5).
    mpc_budget_policy:
        Faithful-mode sample-budget policy: ``"fixed"`` (the
        historical static budget) or ``"adaptive"`` (the peak-hold
        throttling controller, DESIGN.md §13 — ramps the per-round
        budget while predicted peak machine words stay under
        ``mpc_safety_fraction·S`` and backs off before a
        ``SpaceViolation``).  Only meaningful with
        ``mode="faithful"``; rejected otherwise.
    mpc_safety_fraction:
        The adaptive controller's safety band as a fraction of the
        per-machine space budget S (default 0.8, range (0, 1]).
    seed:
        Default seed for calls that do not pass one (the seed policy:
        explicit per-call seeds always win).
    stages:
        Explicit pipeline-stage names (kind ``"pipeline_stage"``), in
        execution order; ``None`` selects the paper's default pipeline
        shaped by ``repair``/``boost``.
    repair / boost / boost_epsilon / boost_mode / rounding_copies:
        The stage knobs, exactly as on
        :func:`repro.core.pipeline.solve_allocation`.
    lam / alpha:
        Arboricity bound (``None`` = λ-oblivious guessing) and the MPC
        space exponent.
    max_workers:
        Default thread-pool width for :meth:`repro.api.Engine.batch`.
    executor:
        Default batch executor: ``"thread"`` (in-process
        :func:`~repro.serve.solve_batch` pool — the historical shape)
        or ``"process"`` (the :class:`~repro.serve.ShardedExecutor`
        shard fleet with shared-memory instances, DESIGN.md §12).
    shard_workers:
        Default shard-process count for the ``"process"`` executor
        (``None`` = one shard per logical core).
    """

    epsilon: float = 0.2
    backend: Optional[str] = None
    substrate: Optional[str] = None
    mode: str = "simulate"
    mpc_budget_policy: str = "fixed"
    mpc_safety_fraction: float = 0.8
    seed: Optional[int] = None
    stages: Optional[tuple[str, ...]] = None
    repair: bool = True
    boost: bool = True
    boost_epsilon: Optional[float] = None
    boost_mode: str = "layered"
    rounding_copies: Optional[int] = None
    lam: Optional[int] = None
    alpha: float = 0.5
    max_workers: Optional[int] = None
    executor: str = "thread"
    shard_workers: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "epsilon", check_fraction(self.epsilon, "epsilon", inclusive_high=0.25)
        )
        if self.backend is not None:
            if self.backend not in registry.available("kernel_backend"):
                raise ValueError(
                    f"unknown kernel backend {self.backend!r}; "
                    f"available: {registry.available('kernel_backend')}"
                )
            # Eager validation extends to host capability: a backend can
            # be registered yet unusable here (the native backend needs
            # a C compiler, DESIGN.md §11) — fail at config construction
            # with the actionable reason instead of at first solve.
            from repro.kernels.backends import backend_availability

            reason = backend_availability(self.backend).get(self.backend)
            if reason is not None:
                raise ValueError(
                    f"kernel backend {self.backend!r} is registered but "
                    f"unavailable on this host: {reason}"
                )
        if self.substrate is not None and self.substrate not in registry.available(
            "mpc_substrate"
        ):
            raise ValueError(
                f"unknown MPC substrate {self.substrate!r}; "
                f"available: {registry.available('mpc_substrate')}"
            )
        if self.mode not in _MODES:
            raise ValueError(f"mode must be one of {list(_MODES)}, got {self.mode!r}")
        if self.mpc_budget_policy not in _BUDGET_POLICIES:
            raise ValueError(
                f"mpc_budget_policy must be one of {list(_BUDGET_POLICIES)}, "
                f"got {self.mpc_budget_policy!r}"
            )
        if self.mpc_budget_policy == "adaptive" and self.mode != "faithful":
            raise ValueError(
                "mpc_budget_policy='adaptive' requires mode='faithful' — "
                "the simulate path has no accounted cluster to throttle"
            )
        object.__setattr__(
            self,
            "mpc_safety_fraction",
            check_fraction(
                self.mpc_safety_fraction, "mpc_safety_fraction", inclusive_high=1.0
            ),
        )
        if self.boost_mode not in _BOOST_MODES:
            raise ValueError(
                f"boost_mode must be one of {list(_BOOST_MODES)}, "
                f"got {self.boost_mode!r}"
            )
        if self.seed is not None and not _is_int(self.seed):
            raise ValueError(f"seed must be an integer or None, got {self.seed!r}")
        if self.seed is not None:
            object.__setattr__(self, "seed", int(self.seed))
        if self.stages is not None:
            if isinstance(self.stages, str):
                raise ValueError(
                    "stages must be a sequence of stage names, not a string"
                )
            stages = tuple(self.stages)
            known = registry.available("pipeline_stage")
            for name in stages:
                if name not in known:
                    raise ValueError(
                        f"unknown pipeline stage {name!r}; available: {known}"
                    )
            object.__setattr__(self, "stages", stages)
        if self.boost_epsilon is not None:
            object.__setattr__(
                self,
                "boost_epsilon",
                check_fraction(self.boost_epsilon, "boost_epsilon"),
            )
        if self.rounding_copies is not None:
            object.__setattr__(
                self,
                "rounding_copies",
                check_positive_int(self.rounding_copies, "rounding_copies"),
            )
        if self.lam is not None:
            object.__setattr__(self, "lam", check_positive_int(self.lam, "lam"))
        if not (0.0 < float(self.alpha) < 1.0):
            raise ValueError(f"alpha must lie in (0,1), got {self.alpha}")
        object.__setattr__(self, "alpha", float(self.alpha))
        if self.max_workers is not None:
            object.__setattr__(
                self,
                "max_workers",
                check_positive_int(self.max_workers, "max_workers"),
            )
        if self.executor not in _EXECUTORS:
            raise ValueError(
                f"executor must be one of {list(_EXECUTORS)}, got {self.executor!r}"
            )
        if self.shard_workers is not None:
            object.__setattr__(
                self,
                "shard_workers",
                check_positive_int(self.shard_workers, "shard_workers"),
            )

    # -- derived views ---------------------------------------------------
    def replace(self, **overrides: Any) -> "SolverConfig":
        """A copy with ``overrides`` applied (re-validated)."""
        return dataclasses.replace(self, **overrides)

    def mpc_options(self) -> dict[str, Any]:
        """Extra keywords for :func:`~repro.core.mpc_driver.solve_allocation_mpc`
        inside a pipeline's fractional stage — empty for the historical
        defaults, so the default cold path stays the plain
        :func:`~repro.core.pipeline.solve_allocation` call."""
        options: dict[str, Any] = {}
        if self.mode != "simulate":
            options["mode"] = self.mode
        if self.substrate is not None:
            options["substrate"] = self.substrate
        if self.mpc_budget_policy != "fixed":
            options["budget_policy"] = self.mpc_budget_policy
            options["safety_fraction"] = self.mpc_safety_fraction
        return options

    def build_stages(self):
        """The configured stage tuple.

        ``stages=None`` builds the paper's default pipeline
        (:func:`repro.core.pipeline.default_stages` under the config's
        knobs); explicit names resolve through the unified registry
        (kind ``"pipeline_stage"``), each factory receiving this
        config.
        """
        if self.stages is None:
            from repro.core.pipeline import default_stages

            return default_stages(
                repair=self.repair,
                boost=self.boost,
                boost_epsilon=self.boost_epsilon,
                boost_mode=self.boost_mode,  # type: ignore[arg-type]
                lam=self.lam,
                alpha=self.alpha,
                rounding_copies=self.rounding_copies,
                mpc_options=self.mpc_options(),
            )
        return tuple(
            registry.resolve("pipeline_stage", name)(self) for name in self.stages
        )

    def session_kwargs(self) -> dict[str, Any]:
        """Constructor keywords for :class:`repro.serve.AllocationSession`
        / :class:`repro.dynamic.DynamicSession` carrying this config's
        defaults."""
        return {
            "epsilon": self.epsilon,
            "repair": self.repair,
            "boost": self.boost,
            "boost_epsilon": self.boost_epsilon,
            "boost_mode": self.boost_mode,
            "rounding_copies": self.rounding_copies,
            "lam": self.lam,
            "alpha": self.alpha,
            "mpc_options": self.mpc_options(),
        }

    # -- JSON round trip -------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-ready dict under the versioned schema."""
        payload: dict[str, Any] = {"schema": CONFIG_SCHEMA}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if f.name == "stages" and value is not None:
                value = list(value)
            payload[f.name] = value
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SolverConfig":
        """Inverse of :meth:`to_dict` (schema-checked, re-validated)."""
        schema = payload.get("schema")
        if schema != CONFIG_SCHEMA:
            raise ValueError(
                f"unsupported SolverConfig schema {schema!r}; "
                f"expected {CONFIG_SCHEMA!r}"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        extra = set(payload) - known - {"schema"}
        if extra:
            raise ValueError(
                f"unknown SolverConfig fields {sorted(extra)}; known: {sorted(known)}"
            )
        kwargs = {k: v for k, v in payload.items() if k in known}
        stages = kwargs.get("stages")
        if isinstance(stages, Sequence) and not isinstance(stages, (str, bytes)):
            kwargs["stages"] = tuple(stages)
        return cls(**kwargs)

    @classmethod
    def from_json(cls, text: str) -> "SolverConfig":
        return cls.from_dict(json.loads(text))
