"""The one result schema (DESIGN.md §10).

The cold path returns a :class:`~repro.core.pipeline.PipelineResult`,
the fractional-only path an :class:`~repro.core.mpc_driver.MPCResult`
— two shapes with overlapping-but-different accessors.
:class:`AllocationReport` wraps either behind one surface: allocation,
certificate, stage records, round ledger, summary, all reachable the
same way regardless of which driver produced the result.

Reports serialize to a *versioned* JSON schema (``to_json`` /
``from_json``).  Serialization keeps everything an operator or a test
would compare — sizes, rounds, the certificate, the full round ledger,
stage audit records, the integral edge mask, the converged β exponents
— and drops only the bulky intermediate numpy state (the fractional
``x`` vector is kept for MPC-kind reports, where it *is* the output).
A deserialized report is *detached*: ``report.result`` is ``None``,
every schema-backed accessor still works.

The payload is built **lazily**: a live report answers every accessor
straight from the wrapped result, and the O(edges) schema document is
materialized only on the first ``to_json``/``to_dict``/``payload``
access — so the hot serving paths (``Engine.batch`` printing summary
rows) pay nothing for the schema they do not use.  Compare reports via
``to_dict()``; report objects themselves use identity equality.
"""

from __future__ import annotations

import json
from typing import Any, Mapping, Optional, Union

import numpy as np

from repro.core.mpc_driver import MPCResult, MPCRoundLedger
from repro.core.pipeline import PipelineResult, StageRecord
from repro.core.termination import CertificateStatus

__all__ = ["REPORT_SCHEMA", "AllocationReport"]

REPORT_SCHEMA = "repro.api/AllocationReport/v1"

_KINDS = ("pipeline", "mpc")


def _jsonify(value: Any) -> Any:
    """Normalize numpy scalars/arrays so payloads are plain JSON."""
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not JSON-serializable: {type(value).__name__}: {value!r}")


def _normalize(payload: dict[str, Any]) -> dict[str, Any]:
    return json.loads(json.dumps(payload, default=_jsonify))


def _ledger_dict(ledger: MPCRoundLedger) -> dict[str, Any]:
    return {
        "by_category": dict(ledger.by_category),
        "phases": ledger.phases,
        "guesses": list(ledger.guesses),
        "peak_machine_words": ledger.peak_machine_words,
        "peak_global_words": ledger.peak_global_words,
        "peak_routed_records": ledger.peak_routed_records,
        "violations": list(ledger.violations),
        "trajectory": [dict(row) for row in ledger.trajectory],
    }


def _certificate_dict(cert: Optional[CertificateStatus]) -> Optional[dict[str, Any]]:
    if cert is None:
        return None
    return {
        "rounds": cert.rounds,
        "n_prime": cert.n_prime,
        "l0_size": cert.l0_size,
        "top_size": cert.top_size,
        "upper_mass": cert.upper_mass,
        "small_frontier": cert.small_frontier,
        "mass_condition": cert.mass_condition,
        "epsilon": cert.epsilon,
    }


def _mask_dict(edge_mask: np.ndarray) -> dict[str, Any]:
    mask = np.asarray(edge_mask, dtype=bool)
    return {
        "n_edges": int(mask.shape[0]),
        "true_edges": np.flatnonzero(mask).tolist(),
    }


def _mpc_summary(result: MPCResult) -> dict[str, Any]:
    return {
        "mpc_rounds": result.mpc_rounds,
        "local_rounds": result.local_rounds,
        "fractional_weight": round(result.match_weight, 3),
        "certified": bool(
            result.certificate is not None and result.certificate.satisfied
        ),
        "guarantee": result.guarantee,
    }


def _restore_report(kind: str, payload: dict[str, Any]) -> "AllocationReport":
    """Unpickle target for :meth:`AllocationReport.__reduce__`."""
    return AllocationReport(kind, payload=payload)


class AllocationReport:
    """Unified result wrapper with a versioned JSON schema.

    Build with :meth:`from_pipeline` / :meth:`from_mpc` /
    :meth:`from_result`; restore a detached report with
    :meth:`from_json`.  ``result`` is the live driver result when the
    report was produced in-process; ``payload`` is the (lazily built)
    normalized schema document of pure JSON types.
    """

    __slots__ = ("kind", "result", "_payload")

    def __init__(
        self,
        kind: str,
        *,
        result: Optional[Union[PipelineResult, MPCResult]] = None,
        payload: Optional[dict[str, Any]] = None,
    ):
        if kind not in _KINDS:
            raise ValueError(f"report kind must be one of {list(_KINDS)}, got {kind!r}")
        if result is None and payload is None:
            raise ValueError("a report needs a live result or a schema payload")
        self.kind = kind
        self.result = result
        self._payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "detached" if self.detached else "live"
        return f"<AllocationReport {self.kind} {state} size={self.size}>"

    def __reduce__(self):
        """Pickle as a *detached* report (kind + schema payload).

        A live report references the driver result, which reaches the
        graph's :class:`~repro.kernels.RoundWorkspace` and its
        thread-local scratch — not picklable, and not meaningful in
        another process anyway.  Crossing a process boundary therefore
        serializes exactly what ``to_json`` keeps: the unpickled report
        is detached, every schema-backed accessor intact.  This is the
        contract the sharded serving layer (DESIGN.md §12) rides on.
        """
        return (_restore_report, (self.kind, self.payload))

    # -- constructors ----------------------------------------------------
    @classmethod
    def from_pipeline(cls, result: PipelineResult) -> "AllocationReport":
        return cls("pipeline", result=result)

    @classmethod
    def from_mpc(cls, result: MPCResult) -> "AllocationReport":
        return cls("mpc", result=result)

    @classmethod
    def from_result(
        cls, result: Union[PipelineResult, MPCResult]
    ) -> "AllocationReport":
        if isinstance(result, PipelineResult):
            return cls.from_pipeline(result)
        if isinstance(result, MPCResult):
            return cls.from_mpc(result)
        raise TypeError(
            f"expected PipelineResult or MPCResult, got {type(result).__name__}"
        )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "AllocationReport":
        schema = payload.get("schema")
        if schema != REPORT_SCHEMA:
            raise ValueError(
                f"unsupported AllocationReport schema {schema!r}; "
                f"expected {REPORT_SCHEMA!r}"
            )
        kind = payload.get("kind")
        if kind not in _KINDS:
            raise ValueError(f"report kind must be one of {list(_KINDS)}, got {kind!r}")
        return cls(kind, payload=_normalize(dict(payload)))

    @classmethod
    def from_json(cls, text: str) -> "AllocationReport":
        return cls.from_dict(json.loads(text))

    # -- internal dispatch -----------------------------------------------
    def _mpc(self) -> Optional[MPCResult]:
        """The wrapped MPC-side result (the driver result itself for
        MPC-kind reports, the pipeline's fractional stage otherwise)."""
        if self.result is None:
            return None
        if isinstance(self.result, PipelineResult):
            return self.result.mpc
        return self.result

    def _build_payload(self) -> dict[str, Any]:
        result = self.result
        assert result is not None
        mpc = self._mpc()
        assert mpc is not None
        pipeline = result if isinstance(result, PipelineResult) else None
        payload = {
            "schema": REPORT_SCHEMA,
            "kind": self.kind,
            "epsilon": mpc.epsilon,
            "size": None if pipeline is None else pipeline.size,
            "match_weight": mpc.match_weight,
            "local_rounds": mpc.local_rounds,
            "mpc_rounds": mpc.mpc_rounds,
            "guarantee": mpc.guarantee,
            "certificate": _certificate_dict(mpc.certificate),
            "ledger": _ledger_dict(mpc.ledger),
            "stage_records": [
                {"stage": r.stage, "size": r.size, "detail": dict(r.detail)}
                for r in (() if pipeline is None else pipeline.stage_records)
            ],
            "edge_mask": None if pipeline is None else _mask_dict(pipeline.edge_mask),
            "final_exponents": None
            if mpc.final_exponents is None
            else mpc.final_exponents.tolist(),
            "allocation_x": mpc.allocation.x.tolist() if pipeline is None else None,
            "summary": result.summary() if pipeline is not None else _mpc_summary(mpc),
            "meta": dict(result.meta),
        }
        return _normalize(payload)

    # -- serialization ---------------------------------------------------
    @property
    def payload(self) -> dict[str, Any]:
        """The normalized schema document (built on first access for
        live reports)."""
        if self._payload is None:
            self._payload = self._build_payload()
        return self._payload

    def to_dict(self) -> dict[str, Any]:
        return dict(self.payload)

    def to_json(self) -> str:
        return json.dumps(self.payload, sort_keys=True)

    @property
    def detached(self) -> bool:
        """True when restored from JSON (no live result attached)."""
        return self.result is None

    # -- the common accessors --------------------------------------------
    @property
    def epsilon(self) -> float:
        mpc = self._mpc()
        return float(mpc.epsilon) if mpc is not None else float(self.payload["epsilon"])

    @property
    def size(self) -> Optional[int]:
        """Integral allocation size (``None`` for fractional-only
        MPC reports)."""
        if self.result is not None:
            if isinstance(self.result, PipelineResult):
                return self.result.size
            return None
        size = self.payload["size"]
        return None if size is None else int(size)

    @property
    def match_weight(self) -> float:
        mpc = self._mpc()
        if mpc is not None:
            return float(mpc.match_weight)
        return float(self.payload["match_weight"])

    @property
    def local_rounds(self) -> int:
        mpc = self._mpc()
        return int(mpc.local_rounds if mpc is not None else self.payload["local_rounds"])

    @property
    def mpc_rounds(self) -> int:
        mpc = self._mpc()
        return int(mpc.mpc_rounds if mpc is not None else self.payload["mpc_rounds"])

    @property
    def guarantee(self) -> Optional[float]:
        mpc = self._mpc()
        g = mpc.guarantee if mpc is not None else self.payload["guarantee"]
        return None if g is None else float(g)

    @property
    def meta(self) -> dict[str, Any]:
        if self.result is not None:
            return dict(self.result.meta)
        return dict(self.payload["meta"])

    @property
    def certificate(self) -> Optional[CertificateStatus]:
        """The λ-free termination certificate (reconstructed for
        detached reports)."""
        mpc = self._mpc()
        if mpc is not None:
            return mpc.certificate
        cert = self.payload["certificate"]
        return None if cert is None else CertificateStatus(**cert)

    @property
    def certified(self) -> bool:
        cert = self.certificate
        return bool(cert is not None and cert.satisfied)

    @property
    def stage_records(self) -> tuple[StageRecord, ...]:
        """Per-stage audit records (empty for MPC-kind reports)."""
        if self.result is not None:
            if isinstance(self.result, PipelineResult):
                return self.result.stage_records
            return ()
        return tuple(
            StageRecord(stage=r["stage"], size=r["size"], detail=dict(r["detail"]))
            for r in self.payload["stage_records"]
        )

    @property
    def round_ledger(self) -> MPCRoundLedger:
        """The accounted MPC round ledger (reconstructed for detached
        reports)."""
        mpc = self._mpc()
        if mpc is not None:
            return mpc.ledger
        d = self.payload["ledger"]
        return MPCRoundLedger(
            by_category=dict(d["by_category"]),
            phases=int(d["phases"]),
            guesses=list(d["guesses"]),
            peak_machine_words=int(d["peak_machine_words"]),
            peak_global_words=int(d["peak_global_words"]),
            peak_routed_records=int(d["peak_routed_records"]),
            violations=list(d["violations"]),
            trajectory=[dict(row) for row in d.get("trajectory", [])],
        )

    @property
    def edge_mask(self) -> Optional[np.ndarray]:
        """The integral allocation's edge mask (``None`` for MPC-kind
        reports)."""
        if self.result is not None:
            if isinstance(self.result, PipelineResult):
                return self.result.edge_mask
            return None
        d = self.payload["edge_mask"]
        if d is None:
            return None
        mask = np.zeros(int(d["n_edges"]), dtype=bool)
        mask[np.asarray(d["true_edges"], dtype=np.int64)] = True
        return mask

    @property
    def final_exponents(self) -> Optional[np.ndarray]:
        """Converged β exponent vector — the warm-start handoff state."""
        mpc = self._mpc()
        if mpc is not None:
            return mpc.final_exponents
        exps = self.payload["final_exponents"]
        return None if exps is None else np.asarray(exps, dtype=np.int64)

    @property
    def allocation(self):
        """The fractional allocation.

        Live reports return the driver's
        :class:`~repro.core.fractional.FractionalAllocation`; detached
        MPC-kind reports reconstruct it from the serialized ``x``;
        detached pipeline-kind reports return ``None`` (the fractional
        intermediate is not serialized — the integral ``edge_mask``
        is the output there).
        """
        mpc = self._mpc()
        if mpc is not None:
            return mpc.allocation
        x = self.payload["allocation_x"]
        if x is None:
            return None
        from repro.core.fractional import FractionalAllocation

        return FractionalAllocation(np.asarray(x, dtype=np.float64))

    def summary(self) -> dict[str, Any]:
        """One row of the numbers a report would quote — identical to
        the wrapped result's ``summary()`` for pipeline reports."""
        if self.result is not None:
            if isinstance(self.result, PipelineResult):
                return self.result.summary()
            return _mpc_summary(self.result)
        return dict(self.payload["summary"])
