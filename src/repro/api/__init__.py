"""repro.api — the unified Engine façade (DESIGN.md §10).

One typed config, one plugin registry, one result schema across every
solve path:

* :class:`SolverConfig` — a frozen, validated configuration (ε,
  kernel backend, MPC substrate, execution mode, seed policy, stage
  overrides) with a versioned JSON round trip; the single source of
  truth that replaces scattered kwargs and the
  ``REPRO_KERNEL_BACKEND`` / ``REPRO_MPC_SUBSTRATE`` environment
  variables.
* :class:`Engine` — context-manager lifecycle over the config:
  ``solve`` (cold pipeline), ``solve_mpc`` (fractional Theorem 3),
  ``open_session`` (warm resident serving), ``open_dynamic``
  (delta-driven instances), ``batch`` / ``stream``.
* :class:`AllocationReport` — one result type wrapping
  :class:`~repro.core.pipeline.PipelineResult` /
  :class:`~repro.core.mpc_driver.MPCResult` with common accessors
  (allocation, certificate, stage records, round ledger) and a
  versioned ``to_json`` / ``from_json`` schema.

Plugin registration lives in :mod:`repro.registry` (kinds
``kernel_backend``, ``mpc_substrate``, ``pipeline_stage``) behind one
``register()`` / ``resolve()`` protocol.

Cold-path outputs are bit-identical to the historical entry points
(:func:`repro.core.pipeline.solve_allocation`,
:func:`repro.core.mpc_driver.solve_allocation_mpc`) on the same
config — asserted by ``tests/test_api.py`` and the CI
``api-stability`` job.
"""

from __future__ import annotations

from repro.api.config import CONFIG_SCHEMA, SolverConfig
from repro.api.engine import Engine, StreamResult
from repro.api.report import REPORT_SCHEMA, AllocationReport

__all__ = [
    "CONFIG_SCHEMA",
    "REPORT_SCHEMA",
    "SolverConfig",
    "Engine",
    "StreamResult",
    "AllocationReport",
]
