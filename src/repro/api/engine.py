"""The Engine façade: one entry point over every solve path.

An :class:`Engine` binds a :class:`~repro.api.SolverConfig` and exposes
the repository's five serving shapes behind one surface (DESIGN.md
§10):

========================  ============================================
``solve(instance)``        cold pipeline solve
                           (:func:`repro.core.pipeline.solve_allocation`)
``solve_mpc(instance)``    fractional-only Theorem-3 solve
                           (:func:`~repro.core.mpc_driver.solve_allocation_mpc`)
``open_session(inst)``     resident warm-start session
                           (:class:`repro.serve.AllocationSession`)
``open_dynamic(inst)``     delta-driven dynamic session
                           (:class:`repro.dynamic.DynamicSession`)
``batch(...)``             request batch over a session
                           (:func:`repro.serve.solve_stream` /
                           :func:`~repro.serve.solve_batch`)
``stream(...)``            delta-stream replay
                           (:func:`repro.serve.replay_stream`)
========================  ============================================

Lifecycle: the engine applies its config's kernel backend and MPC
substrate *scoped*.  ``with Engine(config) as engine: ...`` installs
them on entry and restores the previous selection on exit; outside a
``with`` block each call applies and restores them around itself.
:meth:`activate` installs them process-wide without a paired restore —
the CLI's historical semantics.

Parity contract (asserted in ``tests/test_api.py`` and CI): on the
same :class:`SolverConfig`, ``Engine.solve`` is bit-identical to
:func:`~repro.core.pipeline.solve_allocation` and ``Engine.solve_mpc``
to :func:`~repro.core.mpc_driver.solve_allocation_mpc` — the façade
changes how solves are *addressed*, never what they compute.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional, Sequence, Union

import numpy as np

from repro.api.config import SolverConfig
from repro.api.report import AllocationReport
from repro.dynamic.session import DynamicSession
from repro.graphs.instances import AllocationInstance
from repro.serve.session import AllocationSession, SolveRequest

__all__ = ["Engine", "StreamResult"]


@dataclass(frozen=True)
class StreamResult:
    """Outcome of :meth:`Engine.stream`: the priming solve, one
    :class:`~repro.serve.ReplayStep` per delta, and the session left
    resident for further events."""

    session: DynamicSession = field(repr=False)
    prime: Optional[AllocationReport]
    steps: tuple

    @property
    def reports(self) -> list[AllocationReport]:
        """Per-step results wrapped as :class:`AllocationReport`."""
        return [AllocationReport.from_pipeline(step.result) for step in self.steps]

    def rows(self) -> list[dict[str, Any]]:
        """JSON-serializable per-step audit rows."""
        return [step.as_row() for step in self.steps]


def _as_request(obj: Union[SolveRequest, Mapping[str, Any]]) -> SolveRequest:
    if isinstance(obj, SolveRequest):
        return obj
    return SolveRequest.from_json(obj)


def _as_delta(obj: Any):
    if isinstance(obj, Mapping):
        from repro.dynamic.deltas import delta_from_json

        return delta_from_json(obj)
    return obj


class Engine:
    """One configured solver engine over every execution path.

    Construct from a :class:`SolverConfig` (or keyword overrides of
    the defaults): ``Engine(config)``, ``Engine(epsilon=0.1,
    backend="reference")``, or ``Engine(config, seed=7)``.
    """

    def __init__(self, config: Optional[SolverConfig] = None, **overrides: Any):
        if config is not None and not isinstance(config, SolverConfig):
            raise TypeError(
                f"config must be a SolverConfig, got {type(config).__name__}"
            )
        if config is None:
            config = SolverConfig(**overrides)
        elif overrides:
            config = config.replace(**overrides)
        self.config = config
        self._restore: Optional[tuple] = None
        self._fleet = None  # resident ShardedExecutor (process batches)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "active" if self._restore is not None else "inactive"
        return f"<Engine {state} config={self.config!r}>"

    # -- lifecycle -------------------------------------------------------
    def activate(self) -> "Engine":
        """Install the config's backend/substrate process-globally.

        Idempotent.  Pair with :meth:`close` (or use the engine as a
        context manager) to restore the previous selection; leave
        unpaired for the install-and-forget CLI shape.
        """
        if self._restore is None:
            prev_backend = prev_substrate = None
            if self.config.backend is not None:
                from repro.kernels.backends import _set_backend_impl

                prev_backend = _set_backend_impl(self.config.backend)
            if self.config.substrate is not None:
                from repro.mpc.substrate import _set_substrate_impl

                prev_substrate = _set_substrate_impl(self.config.substrate)
            self._restore = (prev_backend, prev_substrate)
        return self

    def close(self) -> None:
        """Restore the backend/substrate active before :meth:`activate`,
        and shut down the resident shard fleet — terminating its worker
        processes and unlinking every shared-memory segment it
        published (worker crashes included)."""
        if self._fleet is not None:
            fleet, self._fleet = self._fleet, None
            fleet.close()
        if self._restore is not None:
            prev_backend, prev_substrate = self._restore
            self._restore = None
            if prev_backend is not None:
                from repro.kernels.backends import _set_backend_impl

                _set_backend_impl(prev_backend)
            if prev_substrate is not None:
                from repro.mpc.substrate import _set_substrate_impl

                _set_substrate_impl(prev_substrate)

    def __enter__(self) -> "Engine":
        return self.activate()

    def __exit__(self, *exc_info: Any) -> bool:
        self.close()
        return False

    @contextmanager
    def _scoped(self):
        """Backend/substrate applied for one call (no-op when the
        engine is already activated)."""
        if self._restore is not None:
            yield
            return
        self.activate()
        try:
            yield
        finally:
            self.close()

    # -- instance plumbing ----------------------------------------------
    @staticmethod
    def load_instance(path: Any) -> AllocationInstance:
        """Load an instance JSON file (:mod:`repro.graphs.io`)."""
        from repro.graphs.io import load_instance

        return load_instance(path)

    @staticmethod
    def generate_instance(family: str, **params: Any) -> AllocationInstance:
        """Materialize a benchmark-family instance by registry name.

        Raises ``ValueError`` listing the known families for an
        unknown name (the CLI's ``generate`` path).
        """
        from repro.graphs.generators import FAMILY_BUILDERS

        builder = FAMILY_BUILDERS.get(family)
        if builder is None:
            raise ValueError(
                f"unknown family {family!r}; available: {sorted(FAMILY_BUILDERS)}"
            )
        return builder(**params)

    # -- the solve paths -------------------------------------------------
    def solve(
        self,
        instance: AllocationInstance,
        *,
        seed: Any = None,
        initial_exponents: Optional[np.ndarray] = None,
        **overrides: Any,
    ) -> AllocationReport:
        """Cold full-pipeline solve under this engine's config.

        ``overrides`` are per-call :class:`SolverConfig` field
        overrides (re-validated); ``seed=None`` falls back to the
        config's seed policy.  Bit-identical to
        :func:`~repro.core.pipeline.solve_allocation` on the same
        config (the parity test).
        """
        config = self.config.replace(**overrides) if overrides else self.config
        if seed is None:
            seed = config.seed
        with self._scoped():
            if (
                config.stages is None
                and config.rounding_copies is None
                and not config.mpc_options()
            ):
                from repro.core.pipeline import solve_allocation

                result = solve_allocation(
                    instance,
                    config.epsilon,
                    boost_epsilon=config.boost_epsilon,
                    lam=config.lam,
                    alpha=config.alpha,
                    repair=config.repair,
                    boost=config.boost,
                    boost_mode=config.boost_mode,  # type: ignore[arg-type]
                    seed=seed,
                    initial_exponents=initial_exponents,
                )
            else:
                from repro.core.pipeline import run_pipeline

                # Mirror solve_allocation's meta exactly (boost_epsilon
                # resolved the same way), so the schema does not leak
                # which internal branch ran; the extra knob appears
                # only when set.
                meta = {
                    "epsilon": config.epsilon,
                    "boost_epsilon": config.boost_epsilon
                    if config.boost_epsilon is not None
                    else max(config.epsilon, 0.25),
                    "repair": config.repair,
                    "boost": config.boost,
                    "warm_start": initial_exponents is not None,
                }
                if config.rounding_copies is not None:
                    meta["rounding_copies"] = config.rounding_copies
                result = run_pipeline(
                    instance,
                    config.build_stages(),
                    config.epsilon,
                    seed=seed,
                    initial_exponents=initial_exponents,
                    meta=meta,
                )
        return AllocationReport.from_pipeline(result)

    def solve_mpc(
        self,
        instance: AllocationInstance,
        *,
        seed: Any = None,
        initial_exponents: Optional[np.ndarray] = None,
        **mpc_kwargs: Any,
    ) -> AllocationReport:
        """Fractional Theorem-3 solve (the config's ``mode`` selects
        simulate vs faithful execution; ``substrate`` the faithful
        cluster representation).  Extra keywords forward to
        :func:`~repro.core.mpc_driver.solve_allocation_mpc`, winning
        over the config's value for config-backed parameters
        (``mode``, ``substrate``, ``alpha``, ``lam``,
        ``budget_policy``, ``safety_fraction``).
        Bit-identical to the direct call on the same config."""
        if seed is None:
            seed = self.config.seed
        call_kwargs: dict[str, Any] = {
            "alpha": self.config.alpha,
            "lam": self.config.lam,
            "mode": self.config.mode,
            "substrate": self.config.substrate,
            "budget_policy": self.config.mpc_budget_policy,
            "safety_fraction": self.config.mpc_safety_fraction,
            "initial_exponents": initial_exponents,
        }
        call_kwargs.update(mpc_kwargs)
        with self._scoped():
            from repro.core.mpc_driver import solve_allocation_mpc

            result = solve_allocation_mpc(
                instance, self.config.epsilon, seed=seed, **call_kwargs
            )
        return AllocationReport.from_mpc(result)

    # -- resident sessions -----------------------------------------------
    def open_session(self, instance: AllocationInstance) -> AllocationSession:
        """A resident warm-start session carrying this config's
        defaults (DESIGN.md §8).  Run it inside the engine's ``with``
        block when the config selects a non-default backend."""
        return AllocationSession(instance, **self.config.session_kwargs())

    def open_dynamic(self, instance: AllocationInstance) -> DynamicSession:
        """A delta-driven dynamic session carrying this config's
        defaults (DESIGN.md §9)."""
        return DynamicSession(instance, **self.config.session_kwargs())

    def open_service(self, store_dir: Any, **service_kwargs: Any):
        """A durable-session :class:`~repro.serve.AllocationService`
        persisting to ``store_dir`` (DESIGN.md §14).

        Every resident session carries this config's solver defaults;
        the service's deterministic seed-cursor root falls back to the
        config's ``seed`` (else 0).  Remaining keywords — socket path,
        ``max_sessions``, checkpoint cadence, restore verification —
        forward to the :class:`~repro.serve.AllocationService`
        constructor.  Start it with
        :func:`~repro.serve.run_service` (blocking) or ``await
        service.start()`` inside a running loop.
        """
        from repro.serve.service import AllocationService

        service_kwargs.setdefault(
            "seed", self.config.seed if self.config.seed is not None else 0
        )
        return AllocationService(
            store_dir,
            session_kwargs=self.config.session_kwargs(),
            **service_kwargs,
        )

    # -- batch / stream --------------------------------------------------
    def batch(
        self,
        target: Union[
            AllocationInstance, AllocationSession, Sequence[AllocationInstance]
        ],
        requests: Iterable[Union[SolveRequest, Mapping[str, Any]]],
        *,
        seed: Any = None,
        max_workers: Optional[int] = None,
        prime: bool = True,
        executor: Optional[str] = None,
        workers: Optional[int] = None,
    ) -> list[AllocationReport]:
        """Serve a request batch through a resident session (or fleet).

        ``target`` is an instance (a fresh session is opened), an
        existing :class:`~repro.serve.AllocationSession`, or — process
        executor only — a sequence of instances aligned with the
        requests (multi-tenant routing).  Requests may be
        :class:`~repro.serve.SolveRequest` objects or their JSON
        mappings.  ``prime=True`` (default) runs each session's first
        request serially so the batched remainder warm-starts
        (:func:`repro.serve.solve_stream`); ``prime=False`` is a plain
        :func:`repro.serve.solve_batch` against current warm state.

        ``executor`` selects the execution tier (config default
        ``"thread"``): ``"thread"`` runs the in-process pool
        (``workers``/``max_workers`` = pool width), ``"process"``
        routes through the resident :class:`~repro.serve.ShardedExecutor`
        shard fleet (``workers`` = shard count, config
        ``shard_workers``, else one per core; ``target`` must be
        instances, not a session — sessions cannot cross processes).
        Both tiers obey the same seed-per-position determinism
        contract and return bit-identical reports for the same
        ``(target, requests, seed)``.

        The shard fleet stays resident between calls on an activated
        engine (``with Engine(...) as e:`` / ``e.activate()``) and is
        shut down by :meth:`close`; on a non-activated engine the
        per-call scope tears it down again after each batch — activate
        the engine when you want warm shards across batches.
        """
        if executor is None:
            executor = self.config.executor
        if executor == "process":
            return self._batch_sharded(
                target, requests, seed=seed, workers=workers, prime=prime
            )
        if executor != "thread":
            raise ValueError(
                f"executor must be 'thread' or 'process', got {executor!r}"
            )
        if isinstance(target, (list, tuple)):
            raise TypeError(
                "a sequence of instances requires executor='process'; the "
                "thread executor serves one session/instance per batch"
            )
        session = (
            target
            if isinstance(target, AllocationSession)
            else self.open_session(target)
        )
        reqs = [_as_request(r) for r in requests]
        if seed is None:
            seed = self.config.seed
        if max_workers is None:
            max_workers = workers if workers is not None else self.config.max_workers
        with self._scoped():
            if prime:
                from repro.serve.batch import solve_stream

                results = solve_stream(
                    session, reqs, seed=seed, max_workers=max_workers
                )
            else:
                from repro.serve.batch import solve_batch

                results = solve_batch(
                    session, reqs, seed=seed, max_workers=max_workers
                )
        return [AllocationReport.from_pipeline(r) for r in results]

    def shard_executor(self, workers: Optional[int] = None):
        """The engine's resident :class:`~repro.serve.ShardedExecutor`,
        started on first use (``workers`` falls back to the config's
        ``shard_workers``, else one shard per logical core).  A request
        for a different worker count replaces the fleet.  Closed —
        workers terminated, shared memory unlinked — by :meth:`close`.
        """
        import os

        from repro.serve.sharding import ShardedExecutor

        if workers is None:
            workers = self.config.shard_workers
        if workers is None:
            workers = os.cpu_count() or 1
        if self._fleet is not None and self._fleet.workers != workers:
            fleet, self._fleet = self._fleet, None
            fleet.close()
        if self._fleet is None:
            self._fleet = ShardedExecutor(workers, config=self.config).start()
        return self._fleet

    def _batch_sharded(
        self, target, requests, *, seed, workers, prime
    ) -> list[AllocationReport]:
        if isinstance(target, AllocationSession):
            raise TypeError(
                "executor='process' serves instances, not sessions — shard "
                "workers own their sessions; pass the AllocationInstance"
            )
        reqs = [_as_request(r) for r in requests]
        if seed is None:
            seed = self.config.seed
        with self._scoped():
            return self.shard_executor(workers).run_batch(
                target, reqs, seed=seed, prime=prime
            )

    def stream(
        self,
        target: Union[AllocationInstance, DynamicSession],
        deltas: Iterable[Any],
        *,
        seed: Any = None,
        requests: Optional[Sequence[Optional[SolveRequest]]] = None,
        prime: bool = True,
    ) -> StreamResult:
        """Replay an instance-delta stream with warm incremental
        re-solves.

        ``target`` is an initial instance (a fresh
        :class:`~repro.dynamic.DynamicSession` is opened) or an
        existing session; deltas may be
        :class:`~repro.dynamic.InstanceDelta` objects or their JSON
        mappings.  ``prime=True`` runs the initial solve that
        establishes the warm state before the first delta (the CLI's
        shape).  Returns a :class:`StreamResult`.
        """
        dynamic = (
            target if isinstance(target, DynamicSession) else self.open_dynamic(target)
        )
        delta_list = [_as_delta(d) for d in deltas]
        if seed is None:
            seed = self.config.seed
        with self._scoped():
            prime_report = None
            if prime:
                prime_report = AllocationReport.from_pipeline(
                    dynamic.resolve(seed=seed)
                )
            from repro.serve.replay import replay_stream

            steps = replay_stream(dynamic, delta_list, seed=seed, requests=requests)
        return StreamResult(session=dynamic, prime=prime_report, steps=tuple(steps))
