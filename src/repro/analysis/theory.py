"""Shape-fitting against the paper's predictions.

The reproduction brief asks for *shape* agreement, not absolute
numbers: rounds growing like ``log λ`` and flat in ``n`` (Theorems 2/9),
MPC rounds like ``√log λ · log log λ`` (Theorem 3), guessing overhead
constant (§3.2.2).  These helpers fit measured series against candidate
growth laws and report goodness-of-fit, so EXPERIMENTS.md's verdicts
are computed, not eyeballed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "LinearFit",
    "linear_fit",
    "growth_exponent",
    "fit_against_log",
    "shape_verdict",
    "GROWTH_LAWS",
]


@dataclass(frozen=True)
class LinearFit:
    """Least-squares ``y ≈ slope·x + intercept`` with R²."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.slope * x + self.intercept


def linear_fit(x: Sequence[float], y: Sequence[float]) -> LinearFit:
    xs = np.asarray(x, dtype=np.float64)
    ys = np.asarray(y, dtype=np.float64)
    if xs.shape != ys.shape or xs.ndim != 1 or xs.size < 2:
        raise ValueError("linear_fit needs two equally-sized 1-D series (n >= 2)")
    slope, intercept = np.polyfit(xs, ys, 1)
    pred = slope * xs + intercept
    ss_res = float(((ys - pred) ** 2).sum())
    ss_tot = float(((ys - ys.mean()) ** 2).sum())
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return LinearFit(slope=float(slope), intercept=float(intercept), r_squared=r2)


def fit_against_log(values: Sequence[float], measurements: Sequence[float]) -> LinearFit:
    """Fit ``measurement ≈ a·log₂(value) + b`` — the T9 shape test."""
    logs = [math.log2(max(2.0, float(v))) for v in values]
    return linear_fit(logs, measurements)


def growth_exponent(x: Sequence[float], y: Sequence[float]) -> float:
    """Log-log slope: ≈0 means flat, ≈1 linear, ≈0.5 square-root."""
    lx = [math.log(max(1e-12, float(v))) for v in x]
    ly = [math.log(max(1e-12, float(v))) for v in y]
    return linear_fit(lx, ly).slope


GROWTH_LAWS: dict[str, Callable[[float], float]] = {
    "constant": lambda v: 1.0,
    "loglog": lambda v: math.log2(max(2.0, math.log2(max(2.0, v)))),
    "sqrt_log": lambda v: math.sqrt(math.log2(max(2.0, v))),
    "sqrt_log_loglog": lambda v: math.sqrt(math.log2(max(2.0, v)))
    * math.log2(max(2.0, math.log2(max(2.0, v)))),
    "log": lambda v: math.log2(max(2.0, v)),
    "linear": lambda v: v,
}


def shape_verdict(
    values: Sequence[float], measurements: Sequence[float]
) -> dict[str, float]:
    """R² of each candidate growth law (through-origin scaling fit).

    For each law g, fit ``y ≈ c·g(v)`` and report R²; the best-scoring
    law is the measured shape.  Experiments print this dict so the
    reader sees *how decisively* e.g. ``log`` beats ``linear``.
    """
    vs = np.asarray(values, dtype=np.float64)
    ys = np.asarray(measurements, dtype=np.float64)
    if vs.shape != ys.shape or vs.size < 2:
        raise ValueError("shape_verdict needs two equally-sized series (n >= 2)")
    out: dict[str, float] = {}
    ss_tot = float(((ys - ys.mean()) ** 2).sum())
    for name, law in GROWTH_LAWS.items():
        gx = np.asarray([law(float(v)) for v in vs])
        denom = float((gx * gx).sum())
        c = float((gx * ys).sum()) / denom if denom > 0 else 0.0
        pred = c * gx
        ss_res = float(((ys - pred) ** 2).sum())
        out[name] = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return out
