"""Measurement, theory-shape fitting, and concentration diagnostics."""

from repro.analysis.metrics import (
    approximation_ratio,
    IntegralStats,
    integral_stats,
    FractionalStats,
    fractional_stats,
    utilization,
    plateau_round,
)
from repro.analysis.theory import (
    LinearFit,
    linear_fit,
    fit_against_log,
    growth_exponent,
    shape_verdict,
    GROWTH_LAWS,
)
from repro.analysis.concentration import (
    ErrorQuantiles,
    collect_error_quantiles,
    lemma12_violation_rates,
)

__all__ = [
    "approximation_ratio",
    "IntegralStats",
    "integral_stats",
    "FractionalStats",
    "fractional_stats",
    "utilization",
    "plateau_round",
    "LinearFit",
    "linear_fit",
    "fit_against_log",
    "growth_exponent",
    "shape_verdict",
    "GROWTH_LAWS",
    "ErrorQuantiles",
    "collect_error_quantiles",
    "lemma12_violation_rates",
]
