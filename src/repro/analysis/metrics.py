"""Measurement helpers shared by tests, experiments, and benchmarks.

Everything that turns a solver output into a number reported in a
table lives here, so every experiment prices quality the same way:
ratios are always ``OPT / achieved`` (≥ 1, smaller is better), and
feasibility is always checked before a number is reported.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fractional import FractionalAllocation
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.capacities import validate_integral_allocation

__all__ = [
    "approximation_ratio",
    "IntegralStats",
    "integral_stats",
    "FractionalStats",
    "fractional_stats",
    "utilization",
    "plateau_round",
]


def approximation_ratio(opt: float, achieved: float) -> float:
    """``OPT / achieved`` with the degenerate cases pinned: 1.0 when
    both are ~0 (empty instance solved exactly), ∞ when only the
    achieved value is ~0."""
    if opt <= 1e-12:
        return 1.0
    if achieved <= 1e-12:
        return float("inf")
    return float(opt) / float(achieved)


@dataclass(frozen=True)
class IntegralStats:
    size: int
    left_utilization: float      # matched fraction of non-isolated L
    right_utilization: float     # used fraction of total capacity
    saturated_right: int         # right vertices at full capacity


def integral_stats(
    graph: BipartiteGraph, capacities: np.ndarray, edge_mask: np.ndarray
) -> IntegralStats:
    """Feasibility-checked summary of an integral allocation."""
    caps, mask, left_used, right_used = validate_integral_allocation(
        graph, capacities, edge_mask
    )
    active_left = int((graph.left_degrees > 0).sum())
    total_cap = int(caps.sum())
    return IntegralStats(
        size=int(mask.sum()),
        left_utilization=float(left_used.sum()) / max(1, active_left),
        right_utilization=float(right_used.sum()) / max(1, total_cap),
        saturated_right=int((right_used == caps).sum()),
    )


@dataclass(frozen=True)
class FractionalStats:
    weight: float
    support_size: int            # edges with non-negligible mass
    max_edge_value: float
    entropy: float               # mass-weighted entropy of the edge distribution


def fractional_stats(
    graph: BipartiteGraph,
    capacities: np.ndarray,
    allocation: FractionalAllocation,
    *,
    support_tol: float = 1e-9,
) -> FractionalStats:
    """Feasibility-checked summary of a fractional allocation.

    The entropy column reflects AZM18's original motivation (their
    title is "…diverse matching with high entropy"): proportional
    dynamics spread mass instead of committing early.
    """
    allocation.require_feasible(graph, capacities, tol=1e-6)
    x = allocation.x
    weight = float(x.sum())
    support = x > support_tol
    if weight > 0:
        p = x[support] / weight
        entropy = float(-(p * np.log(p)).sum())
    else:
        entropy = 0.0
    return FractionalStats(
        weight=weight,
        support_size=int(support.sum()),
        max_edge_value=float(x.max(initial=0.0)),
        entropy=entropy,
    )


def utilization(capacities: np.ndarray, alloc: np.ndarray) -> np.ndarray:
    """Per-vertex ``alloc_v / C_v`` (the saturation profile E11 plots)."""
    caps = np.asarray(capacities, dtype=np.float64)
    return np.asarray(alloc, dtype=np.float64) / np.maximum(caps, 1e-300)


def plateau_round(match_weights: list[float], *, rel_tol: float = 1e-3) -> int:
    """First round after which the match weight never changes by more
    than ``rel_tol`` relatively — the empirical convergence point."""
    if not match_weights:
        raise ValueError("empty trajectory")
    final = match_weights[-1]
    for i, w in enumerate(match_weights):
        tail = match_weights[i:]
        if all(abs(w2 - final) <= rel_tol * max(1.0, abs(final)) for w2 in tail):
            return i + 1
    return len(match_weights)
