"""Empirical validation of the sampling lemmas (Lemma 11 / Lemma 12).

Lemma 12 asserts that with the theoretical sample budget the estimates
satisfy ``|β̂_u − β_u| ≤ (ε/12)·β_u`` and ``|alloc-hat − alloc| ≤
(ε/4)·alloc`` with probability ≥ 1 − n⁻⁵.  E4 measures how the error
distribution behaves as the budget sweeps *below* the theoretical
value — the empirical counterpart of Lemma 11's trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.sampled import PhaseReport, SampledRun

__all__ = ["ErrorQuantiles", "collect_error_quantiles", "lemma12_violation_rates"]


@dataclass(frozen=True)
class ErrorQuantiles:
    """Relative-error distribution over all (vertex, round) pairs."""

    median: float
    q90: float
    q99: float
    maximum: float
    n_samples: int

    @staticmethod
    def from_errors(errors: np.ndarray) -> "ErrorQuantiles":
        if errors.size == 0:
            return ErrorQuantiles(0.0, 0.0, 0.0, 0.0, 0)
        return ErrorQuantiles(
            median=float(np.quantile(errors, 0.5)),
            q90=float(np.quantile(errors, 0.9)),
            q99=float(np.quantile(errors, 0.99)),
            maximum=float(errors.max()),
            n_samples=int(errors.size),
        )


def collect_error_quantiles(
    reports: list[PhaseReport],
) -> tuple[ErrorQuantiles, ErrorQuantiles]:
    """``(β̂ errors, alloc-hat errors)`` pooled over all rounds.

    Only vertices with a positive true value enter (relative error is
    undefined otherwise — matching Lemma 11's multiplicative form).
    """
    beta_errs: list[np.ndarray] = []
    alloc_errs: list[np.ndarray] = []
    for report in reports:
        for rnd in report.rounds:
            be = rnd.beta_relative_errors()
            beta_errs.append(be[rnd.beta_true > 0])
            ae = rnd.alloc_relative_errors()
            alloc_errs.append(ae[rnd.alloc_true > 0])
    beta = np.concatenate(beta_errs) if beta_errs else np.empty(0)
    alloc = np.concatenate(alloc_errs) if alloc_errs else np.empty(0)
    return ErrorQuantiles.from_errors(beta), ErrorQuantiles.from_errors(alloc)


def lemma12_violation_rates(
    run: SampledRun,
) -> tuple[float, float]:
    """Fraction of (vertex, round) pairs violating Lemma 12's bounds:
    β̂ beyond ε/12 and alloc-hat beyond ε/4 relative error."""
    eps = run.epsilon
    beta_viol = 0
    beta_tot = 0
    alloc_viol = 0
    alloc_tot = 0
    for report in run.phase_reports:
        for rnd in report.rounds:
            be = rnd.beta_relative_errors()[rnd.beta_true > 0]
            beta_viol += int((be > eps / 12.0).sum())
            beta_tot += int(be.size)
            ae = rnd.alloc_relative_errors()[rnd.alloc_true > 0]
            alloc_viol += int((ae > eps / 4.0).sum())
            alloc_tot += int(ae.size)
    return (
        beta_viol / beta_tot if beta_tot else 0.0,
        alloc_viol / alloc_tot if alloc_tot else 0.0,
    )
