"""Sharded serving: a multi-process fleet over shared-memory instances.

The thread-pool batch path (DESIGN.md §8) is GIL-bound; this example
walks the process tier (DESIGN.md §12): publish instances to shared
memory once, fork a worker fleet that attaches them zero-copy, route
requests by instance-content hash, and get back reports that are
bit-identical to the thread path — at any worker count.

Run:  python examples/sharded_batch.py
"""

from __future__ import annotations

from repro.api import Engine, SolverConfig
from repro.graphs.generators import slow_spread_instance, union_of_forests
from repro.serve import ShardedExecutor, SolveRequest, instance_hash


def main() -> None:
    # A small multi-tenant fleet: two structurally distinct instances,
    # so content-hash routing actually has something to separate.
    tenant_a = slow_spread_instance(12, width=16)
    tenant_b = union_of_forests(n_left=120, n_right=80, k=3, capacity=2, seed=7)
    print(f"tenant A: {tenant_a.name}  hash={instance_hash(tenant_a)[:12]}")
    print(f"tenant B: {tenant_b.name}  hash={instance_hash(tenant_b)[:12]}")

    # Requests round-robin the tenants; seeds are assigned per
    # position before routing, which is what makes executor choice
    # invisible in the results.
    instances = [tenant_a, tenant_b] * 3
    requests = [
        SolveRequest(capacity_updates={i % 4: 2}, epsilon=0.2, boost=False)
        for i in range(len(instances))
    ]

    config = SolverConfig(epsilon=0.2, boost=False)

    # 1) The Engine route: executor="process" serves the batch through
    #    an engine-owned resident shard fleet.  Same stream, same
    #    seed, different executor — bit-identical reports (seeds are
    #    assigned per request position before routing).
    with Engine(config) as engine:
        threaded = engine.batch(tenant_a, requests, seed=0)
        sharded = engine.batch(tenant_a, requests, seed=0,
                               executor="process", workers=2)
        assert [r.to_dict() for r in sharded] == \
            [r.to_dict() for r in threaded], "executors must agree"
        print(f"engine batch  : {len(sharded)} requests over 2 workers, "
              f"bit-identical to the thread path")

        # The fleet stays warm between batches on an activated engine,
        # and a sequence of instances fans out multi-tenant (the
        # thread executor takes one session; tenant fan-out is what
        # the process tier is for).
        multi = engine.batch(instances, requests, seed=0,
                             executor="process", workers=2)
        assert all(r.certified for r in multi)
        warm = [r.meta.get("warm_start") for r in multi]
        print(f"tenant fan-out: warm_start per request = {warm}")

    # 2) The explicit executor, for callers that want the knobs:
    #    publication, routing, per-request latency, fleet stats.
    with ShardedExecutor(2, config=config) as executor:
        print(f"routing       : A -> shard {executor.shard_of(tenant_a)}, "
              f"B -> shard {executor.shard_of(tenant_b)}")
        reports = executor.run_batch(instances, requests, seed=0)
        lat_ms = [f"{1000 * s:.1f}" for s in executor.last_latencies]
        print(f"direct batch  : sizes={[r.size for r in reports]}")
        print(f"worker latency: {lat_ms} ms per request")
        stats = executor.stats()
        print(f"fleet stats   : restarts={stats['restarts']}, "
              f"published={stats['published_instances']}")
    # Context exit shut the workers down and unlinked every segment.
    print("fleet closed  : shared memory unlinked")


if __name__ == "__main__":
    main()
