"""Dynamic serving: replay a diurnal capacity wave over a resident session.

Builds the paper's `slow_spread` stress instance (where cold
convergence genuinely costs Θ(log λ) rounds), primes a
:class:`repro.dynamic.DynamicSession` with one cold solve, then
replays a generated diurnal-wave delta stream — every step applies a
capacity delta and re-solves *warm* from the retained converged
exponents, asserting the same λ-free certificate and Definition-5
feasibility as a cold solve.

Run:  PYTHONPATH=src python examples/dynamic_replay.py
"""

from __future__ import annotations

from repro.dynamic import DynamicSession, diurnal_wave
from repro.graphs.generators import slow_spread_instance
from repro.serve import replay_stream


def main() -> None:
    # The Theorem-9 Case-2 family; double the capacity profile so the
    # wave has room to move (unit capacities all round back to 1).
    raw = slow_spread_instance(10, width=8)
    instance = raw.with_capacities(raw.capacities * 2, suffix="x2")
    print(f"instance: {instance.name}  "
          f"(|L|={instance.n_left}, |R|={instance.n_right}, m={instance.n_edges})")

    # One resident dynamic session; the first solve runs cold and
    # establishes the warm state every later re-solve starts from.
    dynamic = DynamicSession(instance, epsilon=0.1, boost=False)
    prime = dynamic.resolve(seed=0)
    print(f"prime (cold) rounds            : {prime.mpc.local_rounds}")

    # A reproducible 12-step diurnal wave: every server's demand
    # follows a sinusoid of the base profile with per-server jitter.
    deltas = diurnal_wave(instance, steps=12, amplitude=0.4, period=8, seed=7)
    steps = replay_stream(dynamic, deltas, seed=1)

    for step in steps:
        print(f"step {step.index:2d}: {step.delta_kind:<14} "
              f"warm={str(step.warm_start):<5} rounds={step.local_rounds:2d} "
              f"size={step.size}")

    stats = dynamic.stats
    warm_rounds = [s.local_rounds for s in steps]
    print(f"warm re-solves                 : {stats.warm_resolves}")
    print(f"rounds per warm re-solve       : {warm_rounds} "
          f"(vs {prime.mpc.local_rounds} cold)")
    assert all(s.certified for s in steps)
    print("every re-solve certified (λ-free) and Definition-5 feasible")


if __name__ == "__main__":
    main()
