"""Quickstart: solve one allocation instance end to end.

Builds a small uniformly sparse instance, runs the paper's LOCAL
algorithm without knowing its arboricity (the λ-oblivious certificate
variant), rounds the fractional output to an integral allocation (§6),
and compares everything against the exact optimum.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.baselines.exact import optimum_value
from repro.core.local_driver import solve_fractional_until_certificate
from repro.graphs.generators import union_of_forests
from repro.rounding.repair import greedy_fill
from repro.rounding.sampling import round_best_of


def main() -> None:
    # A union of 3 random forests: arboricity ≤ 3 by construction.
    instance = union_of_forests(
        n_left=300, n_right=200, k=3, capacity=2, seed=42
    )
    print(f"instance: {instance.name}  "
          f"(|L|={instance.n_left}, |R|={instance.n_right}, m={instance.n_edges})")

    # 1) Fractional allocation, stopping at the paper's certificate —
    #    no knowledge of λ required (remark after Theorem 9).
    epsilon = 0.1
    result = solve_fractional_until_certificate(instance, epsilon)
    print(f"LOCAL rounds until certificate : {result.rounds}")
    print(f"fractional MatchWeight         : {result.match_weight:.2f}")
    print(f"certified factor               : {result.guarantee:.2f} "
          f"(OPT ≤ factor × MatchWeight)")

    # 2) Round to an integral allocation (§6) and repair greedily.
    rounded = round_best_of(
        instance.graph, instance.capacities, result.allocation, seed=0
    )
    repaired = greedy_fill(instance.graph, instance.capacities, rounded.edge_mask, seed=0)
    print(f"rounded size (best of O(log n)): {rounded.size}")
    print(f"after greedy repair            : {int(repaired.sum())}")

    # 3) Compare against the exact optimum (Dinic max-flow oracle).
    opt = optimum_value(instance)
    print(f"exact OPT                      : {opt}")
    print(f"measured fractional ratio      : {opt / result.match_weight:.3f}")
    print(f"measured integral ratio        : {opt / int(repaired.sum()):.3f}")


if __name__ == "__main__":
    main()
