"""Online-ads allocation: impressions to budget-capped advertisers.

The allocation problem's flagship application (§1): impressions (L)
must be assigned to advertisers (R) holding integer budgets C_v.  This
example runs the paper's full pipeline —

    MPC algorithm (Theorem 3, λ unknown)  →  §6 rounding  →
    Appendix-B boosting to (1+ε)

— on a skewed power-law campaign and reports marketplace metrics:
impression fill rate, budget utilization, and the MPC round bill
against the prior art's O(log n).

Run:  python examples/ad_allocation.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import integral_stats
from repro.baselines.exact import optimum_value
from repro.boosting.boost import boost_allocation
from repro.core import params
from repro.core.mpc_driver import solve_allocation_mpc
from repro.graphs.generators import adwords_instance
from repro.rounding.repair import greedy_fill
from repro.rounding.sampling import round_best_of


def main() -> None:
    instance = adwords_instance(
        n_impressions=2000, n_advertisers=150, mean_degree=4,
        budget_exponent=2.0, seed=7,
    )
    g = instance.graph
    print(f"campaign: {instance.name}")
    print(f"  impressions={g.n_left}  advertisers={g.n_right}  "
          f"eligible pairs={g.n_edges}")
    print(f"  total advertiser budget={int(instance.capacities.sum())}")

    # --- Stage 1: the paper's MPC algorithm, arboricity unknown. -----
    epsilon = 0.2
    mpc = solve_allocation_mpc(instance, epsilon, seed=1)
    azm18_bill = params.tau_azm18(g.n_right, epsilon)
    print("\n[MPC] fractional allocation")
    print(f"  MPC rounds           : {mpc.mpc_rounds}  (prior art bill: {azm18_bill})")
    print(f"  λ guess that sufficed: {mpc.meta['used_guess']}")
    print(f"  fractional weight    : {mpc.match_weight:.1f}")

    # --- Stage 2: §6 rounding + repair. -------------------------------
    rounded = round_best_of(g, instance.capacities, mpc.allocation, seed=2)
    repaired = greedy_fill(g, instance.capacities, rounded.edge_mask, seed=2)
    print("\n[rounding] integral allocation")
    print(f"  rounded={rounded.size}  repaired={int(repaired.sum())}")

    # --- Stage 3: boost to (1+ε) via layered augmentation. ------------
    boosted = boost_allocation(instance, repaired, epsilon=0.34, seed=3)
    print("\n[boosting] (1+ε) refinement")
    print(f"  size {boosted.initial_size} → {boosted.final_size} "
          f"({boosted.augmentations} augmentations over "
          f"{boosted.iterations_used} iterations)")

    # --- Marketplace report. ------------------------------------------
    opt = optimum_value(instance)
    stats = integral_stats(g, instance.capacities, boosted.edge_mask)
    print("\n[report]")
    print(f"  optimal assignable impressions : {opt}")
    print(f"  delivered impressions          : {stats.size} "
          f"({opt / max(1, stats.size):.3f}x from optimal)")
    print(f"  impression fill rate           : {stats.left_utilization:.1%}")
    print(f"  budget utilization             : {stats.right_utilization:.1%}")
    print(f"  advertisers at full budget     : {stats.saturated_right}/{g.n_right}")


if __name__ == "__main__":
    main()
