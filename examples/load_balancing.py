"""Server-client load balancing with locality constraints.

The other motivating application (§1, via [ALPZ21]): clients (L) may
only be served by a few nearby servers (R), each with a capacity.
Locality keeps the bipartite graph uniformly sparse — every client
touches `locality` consecutive servers on a ring — so the paper's
λ-parameterized rounds apply with λ ≤ locality, independent of the
fleet size.

This example contrasts the proportional-allocation pipeline with plain
greedy assignment on the metric operators care about: how many clients
get served, and how evenly the servers are loaded.

Run:  python examples/load_balancing.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines.exact import optimum_value
from repro.baselines.greedy import greedy_allocation
from repro.core.local_driver import solve_fractional_until_certificate
from repro.graphs.generators import load_balancing_instance
from repro.rounding.repair import greedy_fill
from repro.rounding.sampling import round_best_of


def server_loads(graph, mask) -> np.ndarray:
    return np.bincount(graph.edge_v[np.asarray(mask, bool)], minlength=graph.n_right)


def main() -> None:
    instance = load_balancing_instance(
        n_clients=3000, n_servers=120, locality=3, seed=11
    )
    g = instance.graph
    caps = instance.capacities
    print(f"fleet: {instance.name}")
    print(f"  clients={g.n_left} servers={g.n_right} "
          f"server capacity={int(caps[0])} (balanced load)")
    print(f"  arboricity ≤ locality = {instance.arboricity_upper_bound} "
          f"— rounds depend on this, not on fleet size")

    # Paper pipeline: fractional (λ-oblivious) → round → repair.
    eps = 0.1
    frac = solve_fractional_until_certificate(instance, eps)
    rounded = round_best_of(g, caps, frac.allocation, seed=0)
    ours = greedy_fill(g, caps, rounded.edge_mask, seed=0)

    # Baseline: first-come-first-served greedy.
    baseline = greedy_allocation(g, caps, order="random", seed=0)

    opt = optimum_value(instance)
    for name, mask in (("proportional+rounding", ours), ("greedy FCFS", baseline)):
        loads = server_loads(g, mask)
        served = int(np.asarray(mask, bool).sum())
        print(f"\n[{name}]")
        print(f"  clients served   : {served} / {opt} optimal "
              f"({served / opt:.1%})")
        print(f"  max server load  : {int(loads.max())} (capacity {int(caps[0])})")
        print(f"  load std-dev     : {loads.std():.2f}")
        print(f"  idle servers     : {int((loads == 0).sum())}")
    print(f"\nLOCAL rounds used by the fractional stage: {frac.rounds} "
          f"(certificate-stopped, λ never supplied)")


if __name__ == "__main__":
    main()
