"""Engine quickstart: the unified repro.api façade end to end.

One typed config, one engine, one result schema — this walks the four
solve paths the Engine exposes (cold, fractional-MPC, warm session,
dynamic stream) on one small instance, and round-trips a result
through the versioned JSON schema.

Run:  python examples/engine_quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.api import AllocationReport, Engine, SolverConfig
from repro.graphs.generators import union_of_forests


def main() -> None:
    # A union of 3 random forests: arboricity ≤ 3 by construction.
    instance = union_of_forests(n_left=300, n_right=200, k=3, capacity=2, seed=42)
    print(f"instance: {instance.name}  "
          f"(|L|={instance.n_left}, |R|={instance.n_right}, m={instance.n_edges})")

    # One config is the single source of truth: ε, backend, seed
    # policy, stage knobs.  It validates eagerly and round-trips JSON.
    config = SolverConfig(epsilon=0.2, seed=0, boost=False)
    assert SolverConfig.from_json(config.to_json()) == config

    with Engine(config) as engine:
        # 1) Cold full-pipeline solve — bit-identical to the historical
        #    core.pipeline.solve_allocation on the same config.
        report = engine.solve(instance)
        print(f"cold solve    : size={report.size}  "
              f"local_rounds={report.local_rounds}  "
              f"certified={report.certified}")

        # 2) Fractional-only Theorem-3 solve (the MPC path).
        fractional = engine.solve_mpc(instance)
        print(f"mpc solve     : weight={fractional.match_weight:.2f}  "
              f"mpc_rounds={fractional.mpc_rounds}  "
              f"guarantee={fractional.guarantee:.2f}")

        # 3) Warm serving: a resident session retains the converged β
        #    exponents, so follow-up solves terminate in a few rounds.
        session = engine.open_session(instance)
        reports = engine.batch(session, [{"seed": 1},
                                         {"capacity_updates": {"0": 3}},
                                         {"epsilon": 0.15}])
        rounds = [r.local_rounds for r in reports]
        print(f"session batch : local_rounds per request = {rounds} "
              f"(first primes, the rest warm-start)")

        # 4) Dynamic serving: replay an instance-delta stream with warm
        #    incremental re-solves.
        outcome = engine.stream(instance, [
            {"type": "capacity_scale", "factor": 1.5},
            {"type": "demand_change", "updates": {"0": 4}},
        ])
        assert outcome.prime is not None
        print(f"dynamic stream: prime={outcome.prime.local_rounds} rounds, then "
              + ", ".join(f"{row['delta']}→{row['local_rounds']} rounds"
                          for row in outcome.rows()))

    # The versioned result schema: serialize, restore detached, and
    # keep every schema-backed accessor.
    restored = AllocationReport.from_json(report.to_json())
    assert restored.detached
    assert restored.size == report.size
    assert restored.certificate == report.certificate
    assert np.array_equal(restored.edge_mask, report.edge_mask)
    print(f"json schema   : {restored.payload['schema']} round trip OK")


if __name__ == "__main__":
    main()
