"""Makespan minimization: allocation as a load-balancing subroutine.

§1 notes that the allocation problem powers the state-of-the-art
distributed load balancing framework [ALPZ21].  This example shows the
usage pattern: binary-search the smallest uniform server capacity T
for which an allocation instance can serve *every* client — that T is
the optimal makespan — using the paper's pipeline as the inner oracle.

Run:  python examples/makespan_balancing.py
"""

from __future__ import annotations

import numpy as np

from repro.applications.makespan import minimize_makespan
from repro.graphs.generators import load_balancing_instance


def main() -> None:
    instance = load_balancing_instance(
        n_clients=500, n_servers=25, locality=3, seed=13
    )
    g = instance.graph
    print(f"fleet: {g.n_left} clients, {g.n_right} servers, "
          f"locality={instance.arboricity_upper_bound}")
    ideal = -(-g.n_left // g.n_right)  # ceil — the fractional lower bound
    print(f"ideal balanced load (⌈clients/servers⌉): {ideal}")

    for oracle in ("exact", "proportional"):
        res = minimize_makespan(g, oracle=oracle, seed=3)
        loads = np.bincount(g.edge_v[res.edge_mask], minlength=g.n_right)
        print(f"\n[{oracle} oracle]")
        print(f"  optimal makespan  : {res.makespan} "
              f"(binary search over T, {res.oracle_calls} oracle calls)")
        print(f"  clients served    : {res.served}/{res.serviceable}")
        print(f"  load distribution : min={loads.min()} "
              f"mean={loads.mean():.1f} max={loads.max()}")
        print(f"  gap to ideal      : {res.makespan - ideal}")


if __name__ == "__main__":
    main()
