"""Sweep orchestration: compare kernel backends across the workload zoo.

A worked example of the sweep subsystem (docs/experiments.md): declare
a grid crossing generator families and sizes with the ``backend``
SolverConfig axis, run it resumably into a manifest directory, then
pivot the records into comparison tables and an ASCII plot — all
without matplotlib and without re-running anything already recorded.

Run:  PYTHONPATH=src python examples/sweep_backends.py
"""

from __future__ import annotations

import tempfile

from repro.sweeps import (
    SweepSpec,
    ascii_chart,
    comparison_table,
    load_records,
    plot_payload,
    run_sweep,
)


def main() -> None:
    spec = SweepSpec(
        name="backends-vs-zoo",
        families=("star", "slow_spread", "heavy_tailed", "adversarial_rounds"),
        sizes=(32, 64),
        epsilons=(0.2,),
        seeds=(0,),
        config_axes={"backend": ("reference", "optimized")},
    )
    print(f"sweep {spec.name!r}: {spec.n_cells} cells")

    out = tempfile.mkdtemp(prefix="sweep-backends-")
    result = run_sweep(spec, out, echo=print)
    print(f"-> {result.ran} ran, {result.skipped} skipped, under {out}\n")

    # Resume is a no-op when everything is recorded.
    again = run_sweep(spec, out)
    assert (again.ran, again.skipped) == (0, result.total_cells)

    records = load_records(out)

    # Backends must agree on every deterministic outcome: pivoting the
    # same value by backend gives identical columns.
    by_backend = comparison_table(
        records, rows="family", cols="backend", value="local_rounds",
        title="certificate rounds by family × backend (must match)",
    )
    print(by_backend.to_ascii())
    for row in by_backend.rows:
        assert row["backend=reference"] == row["backend=optimized"], row

    # The adversarial round-maximizer tops the zoo at equal n.
    rounds = comparison_table(
        records, rows="family", cols="n", value="local_rounds",
        title="certificate rounds by family × n",
    )
    print(rounds.to_ascii())

    chart = ascii_chart(
        plot_payload(records, x="n", y="local_rounds", group="family")
    )
    print(chart)


if __name__ == "__main__":
    main()
