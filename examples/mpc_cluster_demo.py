"""Inside the MPC simulation: machines, rounds, and the space ledger.

Runs the full Theorem-3 algorithm in *faithful* mode on a small
instance: every communication step — level grouping, sampling
announcement, graph exponentiation over the sampled graph, state
write-back, and the O(1)-round termination test — executes on an
accounted cluster whose machines hold S = O(n^α) words.  The printed
ledger is the raw material of experiment E5.

Also demonstrates that simulate mode reproduces the faithful run
bit-for-bit when both use the keyed sampler with one seed, and that
the two cluster substrates (object reference vs columnar, DESIGN.md
§7) produce identical ledgers and allocations.

Run:  python examples/mpc_cluster_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.core.mpc_driver import solve_allocation_mpc
from repro.graphs.generators import union_of_forests
from repro.mpc.substrate import get_substrate


def main() -> None:
    instance = union_of_forests(n_left=24, n_right=20, k=2, capacity=2, seed=5)
    g = instance.graph
    print(f"instance: {instance.name}  (n={g.n_vertices}, m={g.n_edges})")

    eps = 0.2
    faithful = solve_allocation_mpc(
        instance, eps, lam=2, mode="faithful", seed=99,
        sample_budget=6, space_slack=512.0,
    )
    print("\n[faithful cluster execution]")
    print(f"  LOCAL rounds compressed : {faithful.local_rounds} "
          f"(in blocks of B={faithful.meta['block']})")
    print(f"  phases                  : {faithful.ledger.phases}")
    print("  MPC round bill by category:")
    for category, rounds in sorted(faithful.ledger.by_category.items()):
        print(f"    {category:18s} {rounds}")
    print(f"  total MPC rounds        : {faithful.mpc_rounds}")
    print(f"  peak machine words      : {faithful.ledger.peak_machine_words}")
    print(f"  space violations        : {len(faithful.ledger.violations)} (must be 0)")
    print(f"  certificate             : {faithful.certificate.satisfied} "
          f"(N'={faithful.certificate.n_prime}, |L0|={faithful.certificate.l0_size})")

    simulate = solve_allocation_mpc(
        instance, eps, lam=2, mode="simulate", sampler="keyed", seed=99,
        sample_budget=6,
    )
    identical = np.array_equal(faithful.allocation.x, simulate.allocation.x)
    print("\n[cross-mode check]")
    print(f"  simulate-mode output identical to faithful run: {identical}")
    print(f"  match weight: {faithful.match_weight:.3f}")

    # The faithful run above used the active substrate (columnar by
    # default); the object reference substrate must agree exactly.
    other = "object" if get_substrate() == "columnar" else "columnar"
    reference = solve_allocation_mpc(
        instance, eps, lam=2, mode="faithful", seed=99,
        sample_budget=6, space_slack=512.0, substrate=other,
    )
    print("\n[cross-substrate check]")
    print(f"  active substrate        : {get_substrate()}")
    print(f"  {other} ledger identical : "
          f"{reference.ledger.by_category == faithful.ledger.by_category}")
    print(f"  allocations bit-identical: "
          f"{np.array_equal(reference.allocation.x, faithful.allocation.x)}")


if __name__ == "__main__":
    main()
